//===- src/lint/Lexer.cpp - Token-level C++ lexer -------------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"

#include <cctype>

namespace hds {
namespace lint {

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Cursor over the source with line tracking.
class Cursor {
public:
  explicit Cursor(std::string_view Source) : Src(Source) {}

  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }
  unsigned line() const { return Line; }
  size_t pos() const { return Pos; }
  std::string_view slice(size_t Begin) const {
    return Src.substr(Begin, Pos - Begin);
  }

private:
  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Longest-match punctuation.  Three-char operators that matter for rule
/// matching ("..." , "<=>", "->*", "<<=", ">>=") then two-char, then one.
bool isThreeCharPunct(std::string_view S) {
  return S == "..." || S == "<=>" || S == "->*" || S == "<<=" || S == ">>=";
}

bool isTwoCharPunct(std::string_view S) {
  static const char *Ops[] = {"::", "->", "++", "--", "+=", "-=", "*=", "/=",
                              "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=",
                              "&&", "||", "<<", ">>"};
  for (const char *Op : Ops)
    if (S == Op)
      return true;
  return false;
}

} // namespace

LexedFile lexSource(std::string DisplayPath, std::string_view Source) {
  LexedFile File;
  File.Path = std::move(DisplayPath);
  Cursor C(Source);

  bool AtLineStart = true; // only whitespace seen so far on this line
  while (!C.atEnd()) {
    char Ch = C.peek();

    // Whitespace.
    if (Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\v' || Ch == '\f') {
      C.advance();
      continue;
    }
    if (Ch == '\n') {
      C.advance();
      AtLineStart = true;
      continue;
    }

    // Line comment.
    if (Ch == '/' && C.peek(1) == '/') {
      unsigned StartLine = C.line();
      C.advance();
      C.advance();
      size_t Begin = C.pos();
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      File.Comments.push_back(
          {StartLine, C.line(), std::string(C.slice(Begin))});
      continue;
    }

    // Block comment.
    if (Ch == '/' && C.peek(1) == '*') {
      unsigned StartLine = C.line();
      C.advance();
      C.advance();
      size_t Begin = C.pos();
      size_t End = Begin;
      while (!C.atEnd()) {
        if (C.peek() == '*' && C.peek(1) == '/') {
          End = C.pos();
          C.advance();
          C.advance();
          break;
        }
        End = C.pos() + 1;
        C.advance();
      }
      File.Comments.push_back({StartLine, C.line(),
                               std::string(C.slice(Begin).substr(
                                   0, End > Begin ? End - Begin : 0))});
      AtLineStart = false;
      continue;
    }

    // Preprocessor directive: '#' first on the line; consume through any
    // backslash continuations.  Comments inside directives are rare enough
    // in this codebase to ignore.
    if (Ch == '#' && AtLineStart) {
      unsigned StartLine = C.line();
      C.advance(); // '#'
      std::string Text;
      while (!C.atEnd()) {
        char D = C.peek();
        if (D == '\\' && (C.peek(1) == '\n' ||
                          (C.peek(1) == '\r' && C.peek(2) == '\n'))) {
          C.advance(); // backslash
          while (!C.atEnd() && C.peek() != '\n')
            C.advance();
          if (!C.atEnd())
            C.advance(); // newline
          Text.push_back(' ');
          continue;
        }
        if (D == '\n')
          break;
        if (D == '/' && C.peek(1) == '/') { // trailing line comment
          while (!C.atEnd() && C.peek() != '\n')
            C.advance();
          break;
        }
        Text.push_back(C.advance());
      }
      // Trim.
      size_t B = Text.find_first_not_of(" \t");
      size_t E = Text.find_last_not_of(" \t");
      File.Directives.push_back(
          {StartLine, B == std::string::npos
                          ? std::string()
                          : Text.substr(B, E - B + 1)});
      continue;
    }
    AtLineStart = false;

    // Raw string literal R"delim( ... )delim".
    if (Ch == 'R' && C.peek(1) == '"') {
      unsigned StartLine = C.line();
      C.advance(); // R
      C.advance(); // "
      std::string Delim;
      while (!C.atEnd() && C.peek() != '(')
        Delim.push_back(C.advance());
      if (!C.atEnd())
        C.advance(); // '('
      std::string Body;
      std::string Closer = ")" + Delim + "\"";
      while (!C.atEnd()) {
        if (C.peek() == ')' ) {
          // Check for the closer without consuming on mismatch.
          bool Match = true;
          for (size_t I = 0; I < Closer.size(); ++I)
            if (C.peek(I) != Closer[I]) {
              Match = false;
              break;
            }
          if (Match) {
            for (size_t I = 0; I < Closer.size(); ++I)
              C.advance();
            break;
          }
        }
        Body.push_back(C.advance());
      }
      File.Toks.push_back({Token::String, std::move(Body), StartLine});
      continue;
    }

    // String literal.
    if (Ch == '"') {
      unsigned StartLine = C.line();
      C.advance();
      std::string Body;
      while (!C.atEnd() && C.peek() != '"') {
        if (C.peek() == '\\' && C.peek(1) != '\0') {
          Body.push_back(C.advance());
          Body.push_back(C.advance());
          continue;
        }
        if (C.peek() == '\n')
          break; // unterminated; be forgiving
        Body.push_back(C.advance());
      }
      if (!C.atEnd() && C.peek() == '"')
        C.advance();
      File.Toks.push_back({Token::String, std::move(Body), StartLine});
      continue;
    }

    // Character literal.  Distinguish from digit separators: we only enter
    // here when ' is not preceded by an identifier/number character, which
    // the number path below handles by consuming separators itself.
    if (Ch == '\'') {
      unsigned StartLine = C.line();
      C.advance();
      std::string Body;
      while (!C.atEnd() && C.peek() != '\'') {
        if (C.peek() == '\\' && C.peek(1) != '\0') {
          Body.push_back(C.advance());
          Body.push_back(C.advance());
          continue;
        }
        if (C.peek() == '\n')
          break;
        Body.push_back(C.advance());
      }
      if (!C.atEnd() && C.peek() == '\'')
        C.advance();
      File.Toks.push_back({Token::CharLit, std::move(Body), StartLine});
      continue;
    }

    // Number (pp-number, loosely: digits, idents, dots, exponent signs,
    // digit separators).
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(C.peek(1))))) {
      unsigned StartLine = C.line();
      size_t Begin = C.pos();
      C.advance();
      while (!C.atEnd()) {
        char D = C.peek();
        if (isIdentCont(D) || D == '.' || D == '\'') {
          C.advance();
          continue;
        }
        if ((D == '+' || D == '-')) {
          char Prev = C.slice(Begin).back();
          if (Prev == 'e' || Prev == 'E' || Prev == 'p' || Prev == 'P') {
            C.advance();
            continue;
          }
        }
        break;
      }
      File.Toks.push_back({Token::Number, std::string(C.slice(Begin)),
                           StartLine});
      continue;
    }

    // Identifier / keyword.
    if (isIdentStart(Ch)) {
      unsigned StartLine = C.line();
      size_t Begin = C.pos();
      while (!C.atEnd() && isIdentCont(C.peek()))
        C.advance();
      File.Toks.push_back({Token::Ident, std::string(C.slice(Begin)),
                           StartLine});
      continue;
    }

    // Punctuation, longest match.
    {
      unsigned StartLine = C.line();
      char Buf[3] = {C.peek(0), C.peek(1), C.peek(2)};
      std::string_view Three(Buf, 3);
      std::string_view Two(Buf, 2);
      if (isThreeCharPunct(Three)) {
        std::string Text(Three);
        C.advance();
        C.advance();
        C.advance();
        File.Toks.push_back({Token::Punct, std::move(Text), StartLine});
      } else if (isTwoCharPunct(Two)) {
        std::string Text(Two);
        C.advance();
        C.advance();
        File.Toks.push_back({Token::Punct, std::move(Text), StartLine});
      } else {
        File.Toks.push_back({Token::Punct, std::string(1, C.advance()),
                             StartLine});
      }
      continue;
    }
  }

  File.LineCount = C.line();
  return File;
}

} // namespace lint
} // namespace hds
