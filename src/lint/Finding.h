//===- src/lint/Finding.h - Lint finding record ----------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Finding record shared by every lint module.  It lives in its own
/// header so rule families (Rules, LockDiscipline, SchemaLock) can report
/// findings without including each other.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_FINDING_H
#define HDS_LINT_FINDING_H

#include <string>

namespace hds {
namespace lint {

/// One reported violation.
struct Finding {
  std::string RuleId;  ///< "D1" ... "C1", "T1", "W1", "E1", "SUP", "STALE"
  std::string Path;    ///< display path of the offending file
  unsigned Line = 0;
  std::string Message;
  std::string FixHint;
};

} // namespace lint
} // namespace hds

#endif // HDS_LINT_FINDING_H
