//===- src/lint/Rules.h - Project invariant rules --------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hds_lint rule engine.  Rules encode the project's determinism and
/// hygiene invariants (see docs/static-analysis.md for the catalogue):
///
///   D1  no ambient randomness / wall clock / environment reads in src/
///   D2  no iteration over unordered containers without an ordered-ok note
///   D3  no ordering or sorting keyed on raw pointer values
///   D4  no raw new/delete/malloc outside designated allocator files
///   H1  header hygiene: canonical include guards, self-contained includes
///   C1  cycle accounting must route through the MemoryHierarchy API
///   D5  cycle/heat accounting must stay in integer arithmetic
///   T1  hds-guarded-by fields mutate only under their mutex
///   W1  the wire/metric schema matches the committed schema.lock
///   E1  switches over hds-exhaustive enums cover every enumerator
///   SUP malformed hds-lint suppression comments
///   STALE suppressions whose rule no longer fires (--stale-suppressions)
///
/// Findings at a line are suppressed by a comment on the same line or the
/// line above of the form `// hds-lint: <tag>(<reason>)`, and file-wide by
/// `// hds-lint-file: <tag>(<reason>)`.  The reason is mandatory: a
/// suppression without one does not suppress and is itself reported.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_RULES_H
#define HDS_LINT_RULES_H

#include "lint/Finding.h"
#include "lint/Lexer.h"
#include "lint/ProjectModel.h"

#include <string>
#include <utility>
#include <vector>

namespace hds {
namespace lint {

/// Static description of one rule.
struct RuleInfo {
  const char *Id;
  const char *Tag; ///< suppression tag, or nullptr if not suppressible
  const char *Summary;
};

/// The full rule catalogue, in report order.
const std::vector<RuleInfo> &ruleCatalog();

struct LintOptions {
  /// If nonempty, only run rules with these ids.
  std::vector<std::string> OnlyRules;
  /// Contents of the committed schema lock; W1 runs only when set.
  const std::string *SchemaLockText = nullptr;
  /// Display path of the lock, for finding attribution and fix hints.
  std::string SchemaLockPath = "tests/golden/schema.lock";
  /// Generated H1 symbol→header table (see ProjectModel).  When null,
  /// H1 falls back to the curated table alone.
  const std::vector<HeaderReq> *HeaderTable = nullptr;
  /// Report suppressions that no longer suppress anything (STALE).
  bool ReportStale = false;
};

/// The symbol keys H1 checks, as (symbol, needsStd) pairs — the union the
/// compile-db generator should resolve.  Includes the generated-only
/// symbols (optional, variant, expected) that have no curated fallback.
std::vector<std::pair<std::string, bool>> h1SymbolKeys();

/// The curated fallback table used when no compile database is available.
const std::vector<HeaderReq> &fallbackHeaderTable();

/// Merges \p Generated with the curated fallback: generated entries win,
/// fallback fills symbols the generator could not resolve.
std::vector<HeaderReq> mergeHeaderTable(std::vector<HeaderReq> Generated);

/// Runs every (selected) rule over \p Files and returns the unsuppressed
/// findings, sorted by path, line, and rule id.  Cross-file context (the
/// D2 unordered-container index, the T1 lock registry, the W1 schema
/// snapshot) is built from exactly the files passed in, so callers should
/// lint a whole tree at once.
std::vector<Finding> runLint(const std::vector<LexedFile> &Files,
                             const LintOptions &Opts = LintOptions());

/// Formats \p F as "path:line: [ID] message" (+ "  fix: hint" if present).
std::string formatFinding(const Finding &F);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_RULES_H
