//===- src/lint/ScopeTracker.h - Per-TU symbol/scope tracking --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token-level structure discovery for one translation unit: class body
/// spans, function bodies (with owning class and ctor/dtor detection),
/// and enum definitions with their enumerator values and lint markers.
/// This is deliberately a recognizer, not a parser — it finds the shapes
/// the semantic rules (T1 lock discipline, E1 exhaustive dispatch, W1
/// schema lock) need and ignores everything else.  Unrecognized constructs
/// degrade to "not tracked", never to a crash.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_SCOPETRACKER_H
#define HDS_LINT_SCOPETRACKER_H

#include "lint/Lexer.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace hds {
namespace lint {

/// One class/struct body: `class Name ... { [Open] ... [Close] }`.
struct ClassSpan {
  std::string Name; ///< last path component: `Coordinator::ServeState` -> "ServeState"
  size_t Open = 0;  ///< token index of '{'
  size_t Close = 0; ///< token index of matching '}'
  unsigned Line = 0;
};

/// One function definition with a body.
struct FunctionBody {
  std::string Name;      ///< unqualified name ("resolveLocked")
  std::string ClassName; ///< owning class, "" for free functions
  size_t NameTok = 0;    ///< token index of the name
  size_t Open = 0;       ///< token index of the body '{'
  size_t Close = 0;      ///< token index of the matching '}'
  bool IsCtorDtor = false;
  unsigned Line = 0; ///< line of the name token
};

/// One enum definition, with values resolved (implicit enumerators count
/// up from the previous value).
struct EnumDef {
  std::string Name;
  /// Innermost enclosing class/struct body, "" at namespace scope.  Lets
  /// rules resolve `OwningClass::Member` qualifiers and bare member uses
  /// inside the class's own scope.
  std::string OwningClass;
  std::vector<std::pair<std::string, long long>> Enumerators;
  unsigned Line = 0;
  bool Scoped = false;       ///< `enum class/struct` — members never bare
  bool Exhaustive = false;   ///< marked `// hds-exhaustive`
  bool SchemaLocked = false; ///< marked `// hds-schema-enum`
};

/// Finds every class/struct definition body in \p T.  Template parameter
/// lists, forward declarations, and `enum class` never match.  Nested
/// classes produce nested spans.
std::vector<ClassSpan> findClassSpans(const std::vector<Token> &T);

/// Finds function definitions (declarations with a `{...}` body) in \p T.
/// The owning class comes from an explicit `Class::name` qualifier or the
/// innermost enclosing span in \p Classes.  Constructor/destructor bodies
/// are flagged so callers can exempt them from concurrency checks.
std::vector<FunctionBody> findFunctionBodies(const std::vector<Token> &T,
                                             const std::vector<ClassSpan> &Classes);

/// Finds enum definitions in \p File and resolves enumerator values.
/// Marker comments (`hds-exhaustive`, `hds-schema-enum`) attach like
/// suppressions: on the definition line or the line above.
std::vector<EnumDef> findEnums(const LexedFile &File);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_SCOPETRACKER_H
