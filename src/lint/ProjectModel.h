//===- src/lint/ProjectModel.h - Cross-TU project model --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-TU project model: everything hds_lint knows about how the
/// tree is actually compiled, built from the CMake-exported
/// compile_commands.json.  From the compile database the model derives
/// the include search path, asks the recorded compiler for its builtin
/// system include directories, and walks the real standard-library
/// headers on disk to generate H1's symbol→header table — which headers
/// genuinely provide std::optional, std::variant, uint64_t, and friends
/// under this toolchain — replacing the hand-curated mapping.
///
/// Header walking uses a lightweight declaration scanner (not the full
/// lexer): it strips comments/strings and records declared names (after
/// class/struct/union/enum, using-declarations and aliases, typedefs,
/// function names, macro definitions), following includes transitively
/// with per-file caching.  Generation is best-effort: a symbol whose
/// provider cannot be resolved simply falls back to the curated entry.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_PROJECTMODEL_H
#define HDS_LINT_PROJECTMODEL_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hds {
namespace lint {

/// One entry of compile_commands.json, reduced to what the linter needs.
struct CompileCommand {
  std::string Directory; ///< working directory of the compile
  std::string File;      ///< the translation unit
  std::string Compiler;  ///< argv[0] of the compile command
  std::vector<std::string> IncludeDirs; ///< -I / -isystem, absolutized
};

/// Parses \p Json (the contents of compile_commands.json).  Returns
/// false and sets \p Error on malformed input.
bool parseCompileDb(std::string_view Json, const std::string &Path,
                    std::vector<CompileCommand> &Out, std::string &Error);

/// Asks \p Compiler for its builtin C++ system include directories by
/// running `<compiler> -E -x c++ -v` on an empty input and parsing the
/// search-list block.  Returns an empty vector when the compiler cannot
/// be run.
std::vector<std::string> querySystemIncludeDirs(const std::string &Compiler);

/// One H1 requirement: a header using \p Symbol (std-qualified when
/// \p NeedsStd) must include one of \p Headers itself.
struct HeaderReq {
  std::string Symbol;
  bool NeedsStd = false;
  std::vector<std::string> Headers;
  bool Generated = false; ///< derived from the compile DB, not curated
};

/// Generates the symbol→header table for \p Symbols (name, needsStd
/// pairs): for each candidate top-level header, the standard headers it
/// transitively declares are scanned on disk under \p SearchDirs, and a
/// symbol maps to every candidate whose subtree declares it (exact-name
/// candidate first, so fix hints suggest the canonical header).  Symbols
/// with no resolvable provider are omitted.
std::vector<HeaderReq>
generateHeaderTable(const std::vector<std::pair<std::string, bool>> &Symbols,
                    const std::vector<std::string> &CandidateHeaders,
                    const std::vector<std::string> &SearchDirs);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_PROJECTMODEL_H
