//===- src/lint/IncludeGraph.h - Preprocessor-lite include graph -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A preprocessor-lite include graph over a lexed file set.  Quoted
/// includes are resolved to linted files by path-suffix match (the linter
/// sees display paths, not a real include search path), and the graph
/// exposes the transitive closure so rules can ask "what is visible from
/// this translation unit".  D2 uses it to propagate unordered-container
/// names; the project model reuses the extraction helpers to walk real
/// standard-library headers on disk.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_INCLUDEGRAPH_H
#define HDS_LINT_INCLUDEGRAPH_H

#include "lint/Lexer.h"

#include <map>
#include <string>
#include <vector>

namespace hds {
namespace lint {

/// Include paths of \p File written with quotes ("engine/Wire.h").
std::vector<std::string> quotedIncludes(const LexedFile &File);

/// Include paths of \p File written with angle brackets (<vector>).
std::vector<std::string> angleIncludes(const LexedFile &File);

/// The include graph over one linted file set.
struct IncludeGraph {
  /// Per display path: every linted file transitively reachable through
  /// quoted includes, the file itself included.  Unresolvable includes
  /// (system headers, files outside the linted set) are skipped.
  std::map<std::string, std::vector<std::string>> Reachable;
};

/// Builds the graph for \p Files.  Resolution is by path-suffix match
/// against the linted set, mirroring how the tree's quoted includes name
/// files relative to src/.
IncludeGraph buildIncludeGraph(const std::vector<LexedFile> &Files);

} // namespace lint
} // namespace hds

#endif // HDS_LINT_INCLUDEGRAPH_H
