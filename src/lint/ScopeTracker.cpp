//===- src/lint/ScopeTracker.cpp - Per-TU symbol/scope tracking -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/ScopeTracker.h"

#include "lint/TokenUtil.h"

#include <cstdlib>
#include <set>

namespace hds {
namespace lint {

namespace {

using Toks = std::vector<Token>;

/// Keywords that look like `name(` but never begin a function definition.
bool isNonFunctionKeyword(const std::string &S) {
  static const std::set<std::string> KW = {
      "if",     "for",      "while",    "switch",   "catch",
      "return", "sizeof",   "alignof",  "decltype", "static_assert",
      "assert", "defined",  "void",     "int",      "bool",
      "char",   "auto",     "operator", "new",      "delete",
      "throw",  "co_await", "co_return", "constexpr", "requires",
      "alignas", "typeid",  "noexcept"};
  return KW.count(S) != 0;
}

} // namespace

std::vector<ClassSpan> findClassSpans(const Toks &T) {
  std::vector<ClassSpan> Spans;
  for (size_t I = 0; I < T.size(); ++I) {
    if (!(isIdent(T, I, "class") || isIdent(T, I, "struct")))
      continue;
    if (I > 0 && isIdent(T, I - 1, "enum"))
      continue; // enum class
    // Walk the head: attributes, a possibly qualified name, and an
    // optional base clause, stopping at '{' (definition) or anything that
    // rules one out ('<' of a template parameter list, ';', '*', ...).
    std::string Name;
    unsigned Line = T[I].Line;
    size_t J = I + 1;
    bool IsDefinition = false;
    while (J < T.size()) {
      if (isPunct(T, J, "[") && isPunct(T, J + 1, "[")) {
        size_t Close = matchingClose(T, J);
        if (Close == T.size())
          break;
        J = Close + 1;
        continue;
      }
      if (T[J].K == Token::Ident && T[J].Text != "final") {
        Name = T[J].Text;
        Line = T[J].Line;
        ++J;
        continue;
      }
      if (isIdent(T, J, "final")) {
        // `class Name final : Base {` — the specifier sits between the
        // name and the base clause; skip it or the head walk stalls.
        ++J;
        continue;
      }
      if (isPunct(T, J, "::")) {
        ++J;
        continue;
      }
      if (isPunct(T, J, ":")) {
        // Base clause: scan forward to the body '{', skipping balanced
        // template argument lists and parens.
        int Angle = 0;
        for (++J; J < T.size(); ++J) {
          if (T[J].K != Token::Punct)
            continue;
          const std::string &P = T[J].Text;
          if (P == "<")
            ++Angle;
          else if (P == ">")
            --Angle;
          else if (P == ">>")
            Angle -= 2;
          else if (P == "{" && Angle <= 0)
            break;
          else if (P == ";")
            break;
        }
        IsDefinition = J < T.size() && isPunct(T, J, "{");
        break;
      }
      if (isPunct(T, J, "{")) {
        IsDefinition = true;
        break;
      }
      break; // '<', ';', '*', '&', '=', ... — not a definition head
    }
    if (!IsDefinition || Name.empty())
      continue;
    size_t Close = matchingClose(T, J);
    if (Close == T.size())
      continue;
    Spans.push_back({Name, J, Close, Line});
  }
  return Spans;
}

std::vector<FunctionBody> findFunctionBodies(const Toks &T,
                                             const std::vector<ClassSpan> &Classes) {
  std::vector<FunctionBody> Bodies;
  for (size_t I = 1; I < T.size(); ++I) {
    if (!isPunct(T, I, "(") || T[I - 1].K != Token::Ident)
      continue;
    const std::string &Name = T[I - 1].Text;
    if (isNonFunctionKeyword(Name))
      continue;
    if (I >= 2 && (isPunct(T, I - 2, ".") || isPunct(T, I - 2, "->")))
      continue; // member call expression
    size_t ParamClose = matchingClose(T, I);
    if (ParamClose == T.size())
      continue;

    // Explicit qualification and destructor tilde.
    size_t NameTok = I - 1;
    bool IsDtor = NameTok >= 1 && isPunct(T, NameTok - 1, "~");
    size_t QualFrom = IsDtor ? NameTok - 1 : NameTok;
    std::string ClassName;
    if (QualFrom >= 2 && isPunct(T, QualFrom - 1, "::") &&
        T[QualFrom - 2].K == Token::Ident)
      ClassName = T[QualFrom - 2].Text;

    // Walk from the parameter close to the body '{', accepting only the
    // token shapes a function header can contain.  Anything else means
    // this was a call, a declaration, or an initializer — skip it.
    size_t J = ParamClose + 1;
    bool Found = false;
    while (J < T.size() && !Found) {
      if (isIdent(T, J, "const") || isIdent(T, J, "override") ||
          isIdent(T, J, "final") || isIdent(T, J, "mutable") ||
          isPunct(T, J, "&") || isPunct(T, J, "&&")) {
        ++J;
      } else if (isIdent(T, J, "noexcept")) {
        ++J;
        if (isPunct(T, J, "(")) {
          size_t C = matchingClose(T, J);
          if (C == T.size())
            break;
          J = C + 1;
        }
      } else if (isPunct(T, J, "->")) {
        // Trailing return type: consume type tokens up to '{' or ';'.
        int Angle = 0;
        for (++J; J < T.size(); ++J) {
          if (T[J].K == Token::Punct) {
            const std::string &P = T[J].Text;
            if (P == "<")
              ++Angle;
            else if (P == ">")
              --Angle;
            else if (P == ">>")
              Angle -= 2;
            else if (P == "{" && Angle <= 0)
              break;
            else if (P == ";")
              break;
          }
        }
        if (J < T.size() && isPunct(T, J, "{"))
          Found = true;
        else
          break;
      } else if (isPunct(T, J, ":")) {
        // Constructor initializer list: `Name(expr), Other{expr}, ... {`.
        ++J;
        while (J < T.size()) {
          if (T[J].K == Token::Ident || isPunct(T, J, "::") ||
              isPunct(T, J, ",")) {
            ++J;
            continue;
          }
          if (isPunct(T, J, "<")) {
            int Angle = 0;
            for (; J < T.size(); ++J) {
              if (T[J].K != Token::Punct)
                continue;
              if (T[J].Text == "<")
                ++Angle;
              else if (T[J].Text == ">" && --Angle == 0) {
                ++J;
                break;
              } else if (T[J].Text == ">>" && (Angle -= 2) <= 0) {
                ++J;
                break;
              }
            }
            continue;
          }
          if (isPunct(T, J, "(") || isPunct(T, J, "{")) {
            size_t C = matchingClose(T, J);
            if (C == T.size())
              break;
            // A '{' directly after another initializer's close brace or
            // at the clause start is the body only when nothing follows
            // in the init-list grammar; detect the body as a '{' whose
            // predecessor is not an initializer head.
            bool IsBody = isPunct(T, J, "{") && J > 0 &&
                          (isPunct(T, J - 1, ")") || isPunct(T, J - 1, "}"));
            if (IsBody) {
              Found = true;
              break;
            }
            J = C + 1;
            continue;
          }
          break;
        }
        if (!Found)
          break;
      } else if (isPunct(T, J, "{")) {
        Found = true;
      } else {
        break; // ';', '=', ',', ')', operator, ... — not a definition
      }
    }
    if (!Found || J >= T.size())
      continue;
    size_t BodyClose = matchingClose(T, J);
    if (BodyClose == T.size())
      continue;

    if (ClassName.empty()) {
      // Innermost enclosing class span.
      size_t Best = T.size();
      for (const ClassSpan &CS : Classes)
        if (CS.Open < NameTok && NameTok < CS.Close &&
            (Best == T.size() || CS.Close - CS.Open < Best)) {
          ClassName = CS.Name;
          Best = CS.Close - CS.Open;
        }
    }
    bool IsCtorDtor = IsDtor || (!ClassName.empty() && Name == ClassName);
    Bodies.push_back(
        {Name, ClassName, NameTok, J, BodyClose, IsCtorDtor, T[NameTok].Line});
    I = J; // resume after the header; nested lambdas are part of this body
  }
  return Bodies;
}

std::vector<EnumDef> findEnums(const LexedFile &File) {
  const Toks &T = File.Toks;
  const std::vector<ClassSpan> Classes = findClassSpans(T);
  std::vector<EnumDef> Enums;
  for (size_t I = 0; I < T.size(); ++I) {
    if (!isIdent(T, I, "enum"))
      continue;
    size_t J = I + 1;
    bool Scoped = false;
    if (isIdent(T, J, "class") || isIdent(T, J, "struct")) {
      Scoped = true;
      ++J;
    }
    if (J >= T.size() || T[J].K != Token::Ident)
      continue; // anonymous
    EnumDef Def;
    Def.Name = T[J].Text;
    Def.Line = T[J].Line;
    Def.Scoped = Scoped;
    // Innermost class body containing the definition, by narrowest span.
    size_t BestSpan = T.size();
    for (const ClassSpan &CS : Classes)
      if (CS.Open < I && I < CS.Close && CS.Close - CS.Open < BestSpan) {
        BestSpan = CS.Close - CS.Open;
        Def.OwningClass = CS.Name;
      }
    ++J;
    // Optional underlying type: `: uint8_t`.
    if (isPunct(T, J, ":")) {
      ++J;
      while (J < T.size() && (T[J].K == Token::Ident || isPunct(T, J, "::")))
        ++J;
    }
    if (!isPunct(T, J, "{"))
      continue; // forward / opaque declaration
    size_t Close = matchingClose(T, J);
    if (Close == T.size())
      continue;
    long long Next = 0;
    int Depth = 0;
    for (size_t K = J; K < Close; ++K) {
      if (T[K].K == Token::Punct) {
        if (T[K].Text == "{" || T[K].Text == "(")
          ++Depth;
        else if (T[K].Text == "}" || T[K].Text == ")")
          --Depth;
        continue;
      }
      if (Depth != 1 || T[K].K != Token::Ident)
        continue;
      // An enumerator is an identifier followed by '=', ',' or the close.
      bool IsEnumerator = isPunct(T, K + 1, ",") || K + 1 == Close ||
                          isPunct(T, K + 1, "=");
      if (!IsEnumerator)
        continue;
      long long Value = Next;
      if (isPunct(T, K + 1, "=") && K + 2 < Close &&
          T[K + 2].K == Token::Number)
        Value = std::strtoll(T[K + 2].Text.c_str(), nullptr, 0);
      Def.Enumerators.emplace_back(T[K].Text, Value);
      Next = Value + 1;
      // Skip past the initializer to avoid treating its identifiers as
      // enumerators.
      while (K + 1 < Close && !isPunct(T, K + 1, ","))
        ++K;
    }
    // Markers attach like suppressions: the comment's own lines plus the
    // line below it.
    for (const Comment &Note : File.Comments) {
      bool Attached = Def.Line >= Note.Line && Def.Line <= Note.EndLine + 1;
      if (!Attached)
        continue;
      if (Note.Text.find("hds-exhaustive") != std::string::npos)
        Def.Exhaustive = true;
      if (Note.Text.find("hds-schema-enum") != std::string::npos)
        Def.SchemaLocked = true;
    }
    Enums.push_back(std::move(Def));
  }
  return Enums;
}

} // namespace lint
} // namespace hds
