//===- src/lint/ProjectModel.cpp - Cross-TU project model -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "lint/ProjectModel.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hds {
namespace lint {

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reading for compile_commands.json
//===----------------------------------------------------------------------===//

/// Scans a JSON string literal starting at the opening quote \p I and
/// returns its unescaped value, leaving \p I on the closing quote.
std::string readJsonString(std::string_view S, size_t &I) {
  std::string Out;
  for (++I; I < S.size() && S[I] != '"'; ++I) {
    if (S[I] != '\\') {
      Out.push_back(S[I]);
      continue;
    }
    if (++I >= S.size())
      break;
    switch (S[I]) {
    case 'n':
      Out.push_back('\n');
      break;
    case 't':
      Out.push_back('\t');
      break;
    case 'u':
      // Non-ASCII escapes never appear in build paths we care about.
      I += 4;
      break;
    default:
      Out.push_back(S[I]);
    }
  }
  return Out;
}

/// Splits a shell command string into argv, honoring double and single
/// quotes and backslash escapes (the forms CMake emits).
std::vector<std::string> splitCommand(const std::string &Cmd) {
  std::vector<std::string> Argv;
  std::string Cur;
  bool InArg = false;
  for (size_t I = 0; I < Cmd.size(); ++I) {
    char C = Cmd[I];
    if (C == '\\' && I + 1 < Cmd.size()) {
      Cur.push_back(Cmd[++I]);
      InArg = true;
    } else if (C == '"' || C == '\'') {
      char Quote = C;
      InArg = true;
      for (++I; I < Cmd.size() && Cmd[I] != Quote; ++I)
        Cur.push_back(Cmd[I]);
    } else if (std::isspace(static_cast<unsigned char>(C))) {
      if (InArg)
        Argv.push_back(Cur);
      Cur.clear();
      InArg = false;
    } else {
      Cur.push_back(C);
      InArg = true;
    }
  }
  if (InArg)
    Argv.push_back(Cur);
  return Argv;
}

std::string joinPath(const std::string &Dir, const std::string &Rel) {
  if (!Rel.empty() && Rel.front() == '/')
    return Rel;
  if (Dir.empty())
    return Rel;
  return Dir.back() == '/' ? Dir + Rel : Dir + "/" + Rel;
}

void extractIncludeDirs(const std::vector<std::string> &Argv,
                        CompileCommand &Out) {
  if (!Argv.empty())
    Out.Compiler = Argv.front();
  for (size_t I = 1; I < Argv.size(); ++I) {
    const std::string &A = Argv[I];
    std::string Dir;
    if (A == "-I" || A == "-isystem") {
      if (I + 1 < Argv.size())
        Dir = Argv[++I];
    } else if (A.size() > 2 && A.compare(0, 2, "-I") == 0) {
      Dir = A.substr(2);
    } else if (A.size() > 8 && A.compare(0, 8, "-isystem") == 0) {
      Dir = A.substr(8);
    }
    if (!Dir.empty())
      Out.IncludeDirs.push_back(joinPath(Out.Directory, Dir));
  }
}

//===----------------------------------------------------------------------===//
// Declaration scanner for standard headers
//===----------------------------------------------------------------------===//

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

bool isScanKeyword(const std::string &S) {
  static const std::set<std::string> KW = {
      "if",     "for",   "while",  "switch", "return",  "sizeof",
      "static", "const", "inline", "void",   "defined", "operator",
      "else",   "do",    "goto",   "case",   "new",     "delete",
      "throw",  "catch", "try",    "public", "private", "protected"};
  return KW.count(S) != 0;
}

/// What one header file contributes: names it declares plus the includes
/// it pulls in.
struct HeaderFacts {
  std::set<std::string> Declared;
  std::vector<std::string> Includes; ///< include paths, <> and "" merged
};

/// One forward pass over a header: strips comments/strings, records
/// `#include` targets and `#define` names, and applies the declaration
/// heuristics documented in ProjectModel.h.  Reserved identifiers
/// (leading underscore) are never recorded — they are implementation
/// detail, not user-facing vocabulary.
HeaderFacts scanHeader(const std::string &Text) {
  HeaderFacts Facts;
  size_t I = 0;
  const size_t N = Text.size();
  std::string Prev;       // previous identifier
  char PrevPunct = 0;     // previous punctuation character
  bool UsingStmt = false; // inside `using ...;`
  std::vector<std::string> UsingIdents;
  bool UsingAlias = false; // saw '=' after `using X`
  bool TypedefStmt = false;
  std::string LastIdent;

  auto Declare = [&](const std::string &Name) {
    if (!Name.empty() && Name[0] != '_' && !isScanKeyword(Name))
      Facts.Declared.insert(Name);
  };

  while (I < N) {
    char C = Text[I];
    // Comments.
    if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
      while (I < N && Text[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Text[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Text[I] == '*' && Text[I + 1] == '/'))
        ++I;
      I += 2;
      continue;
    }
    // Preprocessor lines: record includes and defines, skip the rest.
    if (C == '#' && (I == 0 || Text[I - 1] == '\n' ||
                     Text[I - 1] == ' ' || Text[I - 1] == '\t')) {
      size_t LineEnd = I;
      while (LineEnd < N &&
             !(Text[LineEnd] == '\n' && Text[LineEnd - 1] != '\\'))
        ++LineEnd;
      std::string Line = Text.substr(I, LineEnd - I);
      size_t P = Line.find_first_not_of(" \t", 1);
      if (P != std::string::npos) {
        if (Line.compare(P, 7, "include") == 0) {
          size_t B = Line.find_first_of("<\"", P);
          if (B != std::string::npos) {
            size_t E = Line.find_first_of(">\"", B + 1);
            if (E != std::string::npos)
              Facts.Includes.push_back(Line.substr(B + 1, E - B - 1));
          }
        } else if (Line.compare(P, 6, "define") == 0) {
          size_t B = Line.find_first_not_of(" \t", P + 6);
          if (B != std::string::npos) {
            size_t E = B;
            while (E < Line.size() && isIdentChar(Line[E]))
              ++E;
            Declare(Line.substr(B, E - B));
          }
        }
      }
      I = LineEnd;
      continue;
    }
    // String / char literals.
    if (C == '"' || C == '\'') {
      char Quote = C;
      for (++I; I < N && Text[I] != Quote; ++I)
        if (Text[I] == '\\')
          ++I;
      ++I;
      continue;
    }
    // Identifiers.
    if (isIdentChar(C) && !std::isdigit(static_cast<unsigned char>(C))) {
      size_t B = I;
      while (I < N && isIdentChar(Text[I]))
        ++I;
      std::string Ident = Text.substr(B, I - B);
      if (Ident == "using") {
        UsingStmt = true;
        UsingIdents.clear();
        UsingAlias = false;
      } else if (Ident == "typedef") {
        TypedefStmt = true;
      } else if (UsingStmt && !UsingAlias) {
        UsingIdents.push_back(Ident);
      }
      // `class X` / `struct X` / `union X` / `enum X` / `enum class X`.
      if (Prev == "class" || Prev == "struct" || Prev == "union" ||
          Prev == "enum")
        Declare(Ident);
      LastIdent = Ident;
      Prev = Ident;
      PrevPunct = 0;
      continue;
    }
    // Numbers: skip the pp-number.
    if (std::isdigit(static_cast<unsigned char>(C))) {
      while (I < N && (isIdentChar(Text[I]) || Text[I] == '.'))
        ++I;
      Prev.clear();
      continue;
    }
    // Whitespace separates tokens but must not break the adjacency
    // tracking: `struct Widget` reaches the identifier branch with
    // Prev == "struct" only if the space in between leaves Prev alone.
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Punctuation.
    if (C == '(') {
      // A name directly before '(' is (approximately) a function
      // declaration or definition — good enough for "this header
      // provides the name".
      if (!Prev.empty() && PrevPunct != '.' && PrevPunct != '>')
        Declare(Prev);
    } else if (C == '=' && UsingStmt && !UsingIdents.empty()) {
      // `using Alias = ...;`
      Declare(UsingIdents.front());
      UsingAlias = true;
    } else if (C == ';') {
      if (UsingStmt && !UsingAlias && !UsingIdents.empty())
        Declare(UsingIdents.back()); // `using ::name;`
      if (TypedefStmt)
        Declare(LastIdent); // `typedef ... name;`
      UsingStmt = false;
      TypedefStmt = false;
      UsingIdents.clear();
    }
    PrevPunct = C;
    Prev.clear();
    ++I;
    continue;
  }
  return Facts;
}

/// Resolves an include name against the search dirs; returns "" when the
/// file does not exist anywhere.
std::string resolveOnDisk(const std::string &Name,
                          const std::vector<std::string> &SearchDirs) {
  for (const std::string &Dir : SearchDirs) {
    std::string Path = joinPath(Dir, Name);
    std::ifstream In(Path);
    if (In.good())
      return Path;
  }
  return {};
}

} // namespace

bool parseCompileDb(std::string_view Json, const std::string &Path,
                    std::vector<CompileCommand> &Out, std::string &Error) {
  Out.clear();
  size_t I = Json.find('[');
  if (I == std::string_view::npos) {
    Error = Path + ": not a compile database (no top-level array)";
    return false;
  }
  while (true) {
    size_t Obj = Json.find('{', I);
    if (Obj == std::string_view::npos)
      break;
    CompileCommand Cmd;
    std::string CommandStr;
    std::vector<std::string> Arguments;
    size_t J = Obj + 1;
    int Depth = 1;
    while (J < Json.size() && Depth > 0) {
      char C = Json[J];
      if (C == '{') {
        ++Depth;
      } else if (C == '}') {
        --Depth;
      } else if (C == '"') {
        std::string Key = readJsonString(Json, J);
        // Key or bare value? A key is followed by ':'.
        size_t K = J + 1;
        while (K < Json.size() &&
               std::isspace(static_cast<unsigned char>(Json[K])))
          ++K;
        if (K < Json.size() && Json[K] == ':') {
          size_t V = K + 1;
          while (V < Json.size() &&
                 std::isspace(static_cast<unsigned char>(Json[V])))
            ++V;
          if (V < Json.size() && Json[V] == '"') {
            std::string Value = readJsonString(Json, V);
            if (Key == "directory")
              Cmd.Directory = Value;
            else if (Key == "file")
              Cmd.File = Value;
            else if (Key == "command")
              CommandStr = Value;
            J = V;
          } else if (V < Json.size() && Json[V] == '[' &&
                     Key == "arguments") {
            for (size_t A = V + 1; A < Json.size() && Json[A] != ']'; ++A)
              if (Json[A] == '"')
                Arguments.push_back(readJsonString(Json, A));
            J = Json.find(']', V);
            if (J == std::string_view::npos) {
              Error = Path + ": unterminated arguments array";
              return false;
            }
          }
        }
      }
      ++J;
    }
    if (!Arguments.empty())
      extractIncludeDirs(Arguments, Cmd);
    else if (!CommandStr.empty())
      extractIncludeDirs(splitCommand(CommandStr), Cmd);
    if (!Cmd.File.empty())
      Out.push_back(std::move(Cmd));
    I = J;
  }
  if (Out.empty()) {
    Error = Path + ": compile database has no entries";
    return false;
  }
  return true;
}

std::vector<std::string> querySystemIncludeDirs(const std::string &Compiler) {
  std::vector<std::string> Dirs;
  if (Compiler.empty() ||
      Compiler.find_first_of("'\\;|&$`") != std::string::npos)
    return Dirs;
  std::string Cmd =
      "'" + Compiler + "' -E -x c++ -v /dev/null 2>&1 >/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return Dirs;
  std::string Output;
  char Buf[512];
  while (size_t Got = fread(Buf, 1, sizeof(Buf), Pipe))
    Output.append(Buf, Got);
  pclose(Pipe);

  std::istringstream In(Output);
  std::string Line;
  bool InList = false;
  while (std::getline(In, Line)) {
    if (Line.find("search starts here") != std::string::npos) {
      InList = true;
      continue;
    }
    if (Line.find("End of search list") != std::string::npos)
      break;
    if (!InList)
      continue;
    size_t B = Line.find_first_not_of(" \t");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find(" (", B); // mac: " (framework directory)"
    Dirs.push_back(Line.substr(B, E == std::string::npos ? std::string::npos
                                                         : E - B));
  }
  return Dirs;
}

std::vector<HeaderReq>
generateHeaderTable(const std::vector<std::pair<std::string, bool>> &Symbols,
                    const std::vector<std::string> &CandidateHeaders,
                    const std::vector<std::string> &SearchDirs) {
  std::vector<HeaderReq> Table;
  if (SearchDirs.empty())
    return Table;

  // Transitively scan each candidate, sharing per-file facts: the bits/
  // internals of one standard header are included by dozens of others.
  std::map<std::string, HeaderFacts> Cache; // resolved path -> facts
  auto FactsFor = [&](const std::string &ResolvedPath) -> const HeaderFacts & {
    auto It = Cache.find(ResolvedPath);
    if (It != Cache.end())
      return It->second;
    std::ifstream In(ResolvedPath);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    return Cache.emplace(ResolvedPath, scanHeader(Buf.str())).first->second;
  };

  std::map<std::string, std::set<std::string>> Provides; // candidate -> names
  for (const std::string &H : CandidateHeaders) {
    std::string Root = resolveOnDisk(H, SearchDirs);
    if (Root.empty())
      continue;
    std::set<std::string> Visited;
    std::vector<std::string> Work{Root};
    std::set<std::string> &Names = Provides[H];
    while (!Work.empty()) {
      std::string Cur = Work.back();
      Work.pop_back();
      if (!Visited.insert(Cur).second)
        continue;
      const HeaderFacts &Facts = FactsFor(Cur);
      Names.insert(Facts.Declared.begin(), Facts.Declared.end());
      for (const std::string &Inc : Facts.Includes) {
        std::string Next = resolveOnDisk(Inc, SearchDirs);
        if (!Next.empty())
          Work.push_back(Next);
      }
    }
  }

  for (const auto &[Symbol, NeedsStd] : Symbols) {
    HeaderReq Req;
    Req.Symbol = Symbol;
    Req.NeedsStd = NeedsStd;
    Req.Generated = true;
    // Exact-name provider first so fix hints name the canonical header.
    auto ProvidesSymbol = [&](const std::string &H) {
      auto It = Provides.find(H);
      return It != Provides.end() && It->second.count(Symbol) != 0;
    };
    if (ProvidesSymbol(Symbol))
      Req.Headers.push_back(Symbol);
    for (const auto &[H, Names] : Provides) {
      (void)Names;
      if (H != Symbol && ProvidesSymbol(H))
        Req.Headers.push_back(H);
    }
    if (!Req.Headers.empty())
      Table.push_back(std::move(Req));
  }
  return Table;
}

} // namespace lint
} // namespace hds
