//===- src/lint/TokenUtil.h - Shared token/path helpers --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small inline helpers shared by the lint rule modules: token predicates,
/// balanced-delimiter matching, and display-path classification.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_LINT_TOKENUTIL_H
#define HDS_LINT_TOKENUTIL_H

#include "lint/Lexer.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hds {
namespace lint {

inline bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

/// True when \p Path lies under the top-level tree \p Root ("src", ...),
/// whether the path is repo-relative or absolute.
inline bool inTree(std::string_view Path, std::string_view Root) {
  std::string Rel(Root);
  Rel += '/';
  if (startsWith(Path, Rel))
    return true;
  std::string Abs = "/" + Rel;
  return Path.find(Abs) != std::string_view::npos;
}

/// True when \p Path names the file \p Tail ("support/Rng.h") under any
/// prefix.
inline bool isFile(std::string_view Path, std::string_view Tail) {
  return Path == Tail || endsWith(Path, std::string("/").append(Tail));
}

inline bool isHeaderPath(std::string_view Path) {
  return endsWith(Path, ".h") || endsWith(Path, ".hpp");
}

inline bool isIdent(const std::vector<Token> &T, size_t I,
                    std::string_view Text) {
  return I < T.size() && T[I].K == Token::Ident && T[I].Text == Text;
}

inline bool isPunct(const std::vector<Token> &T, size_t I,
                    std::string_view Text) {
  return I < T.size() && T[I].K == Token::Punct && T[I].Text == Text;
}

/// Index of the token matching the opener at \p Open ("(", "[", "{"), or
/// T.size() when unbalanced.
inline size_t matchingClose(const std::vector<Token> &T, size_t Open) {
  const std::string &O = T[Open].Text;
  std::string C = O == "(" ? ")" : O == "[" ? "]" : "}";
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].K != Token::Punct)
      continue;
    if (T[I].Text == O)
      ++Depth;
    else if (T[I].Text == C && --Depth == 0)
      return I;
  }
  return T.size();
}

/// For a '<' at \p Open that begins a template argument list, returns the
/// index of the matching '>', or T.size() when it does not look like one
/// (expression context: hits ';', '{', or unbalanced closers first).
inline size_t matchingTemplateClose(const std::vector<Token> &T, size_t Open) {
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    if (T[I].K != Token::Punct)
      continue;
    const std::string &P = T[I].Text;
    if (P == "<")
      ++Depth;
    else if (P == ">" && --Depth == 0)
      return I;
    else if (P == ">>" && (Depth -= 2) <= 0)
      return I; // nested close like map<int, vector<int>>
    else if (P == ";" || P == "{")
      return T.size();
  }
  return T.size();
}

/// True if token \p I is a call to the unqualified or std-qualified
/// function \p Name: `Name(`, `std::Name(`, but not `x.Name(`,
/// `x->Name(`, or `Other::Name(`.
inline bool isFreeCall(const std::vector<Token> &T, size_t I,
                       std::string_view Name) {
  if (!isIdent(T, I, Name) || !isPunct(T, I + 1, "("))
    return false;
  if (I == 0)
    return true;
  if (isPunct(T, I - 1, ".") || isPunct(T, I - 1, "->"))
    return false;
  if (isPunct(T, I - 1, "::"))
    return I >= 2 && isIdent(T, I - 2, "std");
  return true;
}

} // namespace lint
} // namespace hds

#endif // HDS_LINT_TOKENUTIL_H
