//===- engine/ExperimentRunner.cpp - Run one experiment spec --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentRunner.h"

#include "core/Runtime.h"
#include "support/Rng.h"
#include "workloads/Workload.h"

#include <memory>

using namespace hds;
using namespace hds::engine;

RunResult hds::engine::runExperiment(const ExperimentSpec &Spec,
                                     ConfigTweak Tweak) {
  RunResult Result;
  Result.Spec = Spec;

  std::unique_ptr<workloads::Workload> Bench =
      workloads::createWorkload(Spec.Workload);
  if (!Bench) {
    Result.State = RunResult::Status::Error;
    Result.Error = "unknown workload '" + Spec.Workload + "'";
    return Result;
  }

  core::OptimizerConfig Config = Spec.materializeConfig();
  if (Tweak)
    Tweak(Config);

  core::Runtime Rt(Config);

  // Layout seed: shift the heap base deterministically so every
  // subsequent allocation lands on different cache blocks/sets.  The pad
  // stays below one L2 way so the working set itself is unchanged.
  if (Spec.Seed != 0) {
    Rng LayoutRng(Spec.Seed);
    Rt.padHeap(LayoutRng.nextInRange(8, 8192) & ~uint64_t{7});
  }

  Bench->setup(Rt);

  uint64_t Iterations = Spec.Iterations;
  if (Iterations == 0)
    Iterations = static_cast<uint64_t>(
        static_cast<double>(Bench->defaultIterations()) * Spec.Scale);
  if (Iterations == 0)
    Iterations = 1;
  Bench->run(Rt, Iterations);

  Result.State = RunResult::Status::Ok;
  Result.Iterations = Iterations;
  Result.Cycles = Rt.cycles();
  Result.Stats = Rt.stats();
  Result.Memory = Rt.memory().stats();
  Result.L1 = Rt.memory().l1().stats();
  Result.L2 = Rt.memory().l2().stats();
  Result.Breakdown = Rt.cycleBreakdown();
  Result.Streams = Rt.streamPrefetchStats();
  Result.Prefetchers = Rt.prefetcherStats();
  return Result;
}
