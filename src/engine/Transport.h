//===- engine/Transport.h - Sockets for the distributed runner -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking socket transport for the coordinator/worker protocol:
/// loopback TCP ("127.0.0.1:7077", port 0 picks a free port) and
/// Unix-domain sockets ("unix:/path/to.sock").  Connections carry whole
/// wire frames (engine/Wire.h) with per-operation deadlines, so no read
/// or write can block forever — a peer that stops talking surfaces as
/// IoStatus::TimedOut, which the coordinator turns into a job re-queue.
///
/// Deadlines are implemented with kernel socket timeouts (SO_RCVTIMEO /
/// SO_SNDTIMEO) and poll(2) timeouts; the engine never reads a clock
/// itself, keeping lint rule D1 (no ambient wall-clock in src/) intact.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_TRANSPORT_H
#define HDS_ENGINE_TRANSPORT_H

#include "engine/Wire.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// Outcome of one blocking socket operation.
enum class IoStatus : uint8_t {
  Ok,
  TimedOut, ///< the per-operation deadline elapsed
  Closed,   ///< the peer closed the connection
  Malformed, ///< the peer sent bytes wire::decodeFrame rejected
  Error,    ///< any other socket error
};

/// One connected peer, move-only; the descriptor closes with the object.
class Connection {
public:
  Connection() = default;
  /// Adopts an already-connected descriptor.
  explicit Connection(int FdIn) : Fd(FdIn) {}
  ~Connection();
  Connection(Connection &&Other) noexcept;
  Connection &operator=(Connection &&Other) noexcept;
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  bool valid() const { return Fd >= 0; }
  void close();
  /// Half-closes both directions without releasing the descriptor, so a
  /// blocked peer thread wakes with Closed.  Safe from another thread.
  void shutdownBoth();
  /// Half-closes the receive direction only: wakes a thread blocked in
  /// recvFrame on this connection while leaving the send side usable
  /// (the coordinator's wind-down farewell needs exactly this split).
  void shutdownRead();

  /// Kernel-enforced per-operation deadlines in milliseconds (0 leaves
  /// the direction blocking indefinitely).
  bool setDeadlines(uint32_t RecvMs, uint32_t SendMs);

  /// Sends one whole frame.
  IoStatus sendFrame(wire::FrameType Type,
                     const std::vector<uint8_t> &Payload);
  /// Receives one whole frame, assembling across short reads.  On
  /// Malformed, \p Error carries the decoder's message; a connection
  /// that produced Malformed bytes must be dropped (the stream cannot
  /// be resynchronized).
  IoStatus recvFrame(wire::Frame &Out, std::string &Error);

private:
  IoStatus sendAll(const uint8_t *Data, std::size_t Size);

  int Fd = -1;
  /// Carry-over bytes past the last decoded frame boundary.
  std::vector<uint8_t> Buffer;
};

/// Parses "unix:/path" or "host:port" (numeric IPv4; port 0 = ephemeral).
struct Address {
  bool IsUnix = false;
  std::string UnixPath;
  std::string Host;
  uint16_t Port = 0;
};
bool parseAddress(const std::string &Text, Address &Out, std::string &Error);

/// Connects to \p Addr ("unix:/path" or "host:port").  Returns an
/// invalid Connection and sets \p Error on failure.
Connection connectTo(const std::string &Addr, std::string &Error);

/// Listening socket; accept() takes a deadline so a coordinator with no
/// workers can notice and fail the matrix instead of hanging.
class Listener {
public:
  Listener() = default;
  ~Listener();
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on \p Addr.  Unix paths are unlinked first (a
  /// stale socket file from a dead run must not block the next one).
  bool listen(const std::string &Addr, std::string &Error);
  bool valid() const { return Fd >= 0; }
  void close();

  /// The resolved address peers should connect to — for TCP with port 0
  /// this is the actual ephemeral port ("127.0.0.1:54321").
  const std::string &boundAddress() const { return Bound; }

  enum class AcceptStatus : uint8_t { Ok, TimedOut, Error };
  /// Waits up to \p DeadlineMs for one connection.
  AcceptStatus accept(Connection &Out, uint32_t DeadlineMs);

private:
  int Fd = -1;
  bool IsUnix = false;
  std::string UnixPath;
  std::string Bound;
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_TRANSPORT_H
