//===- engine/ExecutorFactory.cpp - Executor construction -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ExecutorFactory.h"

#include "engine/JobScheduler.h"

#include <utility>

using namespace hds;
using namespace hds::engine;

namespace {

/// In-process execution across a JobScheduler worker pool.  Private to
/// the factory: callers only ever see the Executor interface.
class LocalExecutor final : public Executor {
public:
  LocalExecutor(unsigned JobsIn, const std::atomic<bool> *CancelIn)
      : Jobs(JobsIn), CancelRequested(CancelIn) {}

  void runAll(std::span<const ExperimentSpec> Specs,
              ResultSink &Sink) override {
    JobScheduler Scheduler(Jobs);
    for (std::size_t Index = 0; Index < Specs.size(); ++Index) {
      const ExperimentSpec &Spec = Specs[Index];
      const std::atomic<bool> *Cancel = CancelRequested;
      Scheduler.submit([Index, &Spec, &Sink, Cancel, &Scheduler] {
        if (Cancel && Cancel->load(std::memory_order_relaxed)) {
          // Drop everything still queued too, so cancellation takes
          // effect promptly instead of once per remaining job.
          Scheduler.cancel();
          RunResult Cancelled;
          Cancelled.Spec = Spec;
          Sink.deliver(Index, std::move(Cancelled));
          return;
        }
        Sink.deliver(Index, runExperiment(Spec));
      });
    }
    Scheduler.wait();
  }

private:
  unsigned Jobs;
  const std::atomic<bool> *CancelRequested;
};

} // namespace

std::unique_ptr<Executor> hds::engine::makeLocal(const FleetConfig &Config) {
  return std::make_unique<LocalExecutor>(Config.Jobs, Config.CancelRequested);
}
