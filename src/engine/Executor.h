//===- engine/Executor.h - Transport-agnostic matrix execution -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified execution surface for experiment matrices.  Callers name
/// *what* to run (a span of ExperimentSpecs) and *where results land*
/// (a ResultSink); an Executor implementation decides *how* the specs
/// are executed:
///
///   * LocalExecutor  — shards across an in-process JobScheduler thread
///     pool (the historical runMatrix path).
///   * SocketExecutor — serves the specs to worker processes over
///     loopback TCP or Unix-domain sockets (engine/Coordinator.h),
///     optionally forking local workers for single-machine convenience.
///
/// Both implementations deliver into the same index-addressed sink, so
/// for a fixed spec list the merged results — and the JSON serialized
/// from them — are byte-identical whichever executor ran the matrix and
/// however its work was interleaved.  That equality is enforced by
/// tier-1 tests (tests/distributed_test.cpp, tool_matrix_distributed_
/// deterministic).
///
/// This interface replaces the former runMatrix()/MatrixOptions free
/// functions, which were removed in the same change that introduced it;
/// progress callbacks live on the sink (ResultSink::setCallback) and
/// cancellation is a LocalExecutor option.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXECUTOR_H
#define HDS_ENGINE_EXECUTOR_H

#include "engine/Coordinator.h"
#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"
#include "engine/Worker.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// Runs experiment matrices; implementations differ only in transport.
class Executor {
public:
  virtual ~Executor();

  /// Executes every spec, delivering each result into the sink slot of
  /// its spec index.  Returns once every slot is resolved (LocalExecutor
  /// leaves cancelled jobs' slots unfilled; the sink reports them as
  /// Status::Cancelled).
  virtual void runAll(std::span<const ExperimentSpec> Specs,
                      ResultSink &Sink) = 0;

  /// Convenience wrapper: makes the sink, runs, and returns results in
  /// spec order with every slot carrying its spec (including cancelled
  /// ones).  The aggregate is byte-identical across executors.
  /// \p OnResult, when set, fires once per finished job in *completion*
  /// order (serialized by the sink lock).
  std::vector<RunResult>
  run(std::span<const ExperimentSpec> Specs,
      std::function<void(std::size_t, const RunResult &)> OnResult = nullptr);
};

/// In-process execution across a JobScheduler worker pool.
class LocalExecutor : public Executor {
public:
  struct Options {
    /// Worker threads (clamped to at least 1).
    unsigned Jobs = 1;
    /// When non-null and set, jobs that have not started yet finish as
    /// Status::Cancelled instead of running.  Running jobs complete.
    const std::atomic<bool> *CancelRequested = nullptr;
  };

  LocalExecutor() = default;
  explicit LocalExecutor(const Options &OptsIn) : Opts(OptsIn) {}

  void runAll(std::span<const ExperimentSpec> Specs,
              ResultSink &Sink) override;

private:
  Options Opts;
};

/// Distributed execution through a Coordinator.  Construction binds the
/// listener; check valid() before runAll (an invalid executor resolves
/// every job as an error rather than hanging).
class SocketExecutor : public Executor {
public:
  struct Options {
    CoordinatorOptions Coordinator;
    /// Convenience mode: fork this many local worker processes that
    /// connect back over the listen address.  0 = external workers only
    /// (start them with `hds_matrix --worker <addr>`).
    unsigned ForkedWorkers = 0;
    /// Options for the forked workers.
    WorkerOptions Worker;
  };

  explicit SocketExecutor(const Options &OptsIn);

  /// False when the listener failed to bind; error() says why.
  bool valid() const { return Listening; }
  const std::string &error() const { return Dispatch.error(); }
  /// The address workers should connect to (real port for ":0").
  const std::string &boundAddress() const { return Dispatch.boundAddress(); }

  void runAll(std::span<const ExperimentSpec> Specs,
              ResultSink &Sink) override;

private:
  Options Opts;
  Coordinator Dispatch;
  bool Listening = false;
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXECUTOR_H
