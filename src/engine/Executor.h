//===- engine/Executor.h - Transport-agnostic matrix execution -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified execution surface for experiment matrices.  Callers name
/// *what* to run (a span of ExperimentSpecs) and *where results land*
/// (a ResultSink); an Executor implementation decides *how* the specs
/// are executed.  Implementations are constructed through the factory
/// functions in engine/ExecutorFactory.h — makeLocal() for the
/// in-process thread pool, makeFleet() for the socket-served fleet
/// service (src/fleet/) — never instantiated directly.
///
/// Every implementation delivers into the same index-addressed sink, so
/// for a fixed spec list the merged results — and the JSON serialized
/// from them — are byte-identical whichever executor ran the matrix and
/// however its work was interleaved, including a fleet run interrupted
/// and resumed from its checkpoint journal.  That equality is enforced
/// by tier-1 tests (tests/distributed_test.cpp, tool_matrix_distributed_
/// deterministic, tool_fleet_resume_identical).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXECUTOR_H
#define HDS_ENGINE_EXECUTOR_H

#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace hds {
namespace engine {

/// Runs experiment matrices; implementations differ only in transport.
class Executor {
public:
  virtual ~Executor();

  /// Executes every spec, delivering each result into the sink slot of
  /// its spec index.  Returns once every slot is resolved (cancelled or
  /// drained jobs' slots stay unfilled; the sink reports them as
  /// Status::Cancelled).
  virtual void runAll(std::span<const ExperimentSpec> Specs,
                      ResultSink &Sink) = 0;

  /// Convenience wrapper: makes the sink, runs, and returns results in
  /// spec order with every slot carrying its spec (including cancelled
  /// ones).  The aggregate is byte-identical across executors.
  /// \p OnResult, when set, fires once per finished job in *completion*
  /// order (serialized by the sink lock).
  std::vector<RunResult>
  run(std::span<const ExperimentSpec> Specs,
      std::function<void(std::size_t, const RunResult &)> OnResult = nullptr);
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXECUTOR_H
