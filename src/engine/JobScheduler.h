//===- engine/JobScheduler.h - Fixed-size worker pool ----------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool sharding independent jobs across cores: the
/// first genuinely concurrent code in the tree.  Design constraints, in
/// order:
///
///   * Determinism of *results* is the caller's job (jobs must be
///     independent and deliver into an index-addressed sink); the
///     scheduler itself promises only that every submitted job either
///     runs exactly once or is counted as dropped by cancel().
///   * No ambient nondeterminism: no clocks, no randomness, no
///     load-dependent decisions — just a FIFO queue and a condition
///     variable (D1 holds in src/ even for concurrent code).
///   * Cancellation-safe: cancel() drops not-yet-started jobs, running
///     jobs finish, and the destructor joins every worker
///     unconditionally (std::jthread), so no thread can outlive the
///     pool.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_JOBSCHEDULER_H
#define HDS_ENGINE_JOBSCHEDULER_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hds {
namespace engine {

/// Fixed-size FIFO worker pool.
class JobScheduler {
public:
  /// Spawns \p ThreadCount workers (clamped to at least one).
  explicit JobScheduler(unsigned ThreadCount);

  /// Drops any still-queued jobs, wakes all workers, and joins them.
  /// Jobs already running complete before the destructor returns.
  ~JobScheduler();

  JobScheduler(const JobScheduler &) = delete;
  JobScheduler &operator=(const JobScheduler &) = delete;

  /// Enqueues \p Job.  Jobs run in submission order (FIFO) across the
  /// worker pool.  Submitting after shutdown began counts the job as
  /// dropped instead of running it.
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has finished or been dropped.
  void wait();

  /// Drops all not-yet-started jobs.  Jobs already running on a worker
  /// complete normally.  Safe to call from any thread, including from
  /// inside a running job.
  void cancel();

  /// Number of jobs that ran to completion.
  std::size_t executed() const;

  /// Number of jobs dropped by cancel() or shutdown before starting.
  std::size_t dropped() const;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

private:
  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable AllDone;
  std::deque<std::function<void()>> Queue; // hds-guarded-by(Mutex)
  std::size_t Pending = 0;  // hds-guarded-by(Mutex) queued + running
  std::size_t Executed = 0; // hds-guarded-by(Mutex)
  std::size_t Dropped = 0;  // hds-guarded-by(Mutex)
  bool ShuttingDown = false; // hds-guarded-by(Mutex)
  /// Declared last: destroyed (and therefore joined) first, while the
  /// mutex and condition variables above are still alive.
  std::vector<std::jthread> Workers;
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_JOBSCHEDULER_H
