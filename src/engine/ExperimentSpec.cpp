//===- engine/ExperimentSpec.cpp - One cell of the run matrix -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentSpec.h"

#include "workloads/Workload.h"

#include <cstdlib>

using namespace hds;
using namespace hds::engine;

core::OptimizerConfig ExperimentSpec::materializeConfig() const {
  core::OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Dfsm.HeadLength = HeadLength;
  Config.EnableStridePrefetcher = Stride;
  Config.EnableMarkovPrefetcher = Markov;
  Config.PinFirstOptimization = Pin;
  Config.AdaptiveHibernation = Adaptive;
  return Config;
}

std::string ExperimentSpec::label() const {
  std::string Label = Workload + "/" + core::runModeToken(Mode);
  if (Seed != 0)
    Label += "@" + std::to_string(Seed);
  if (Stride)
    Label += "+stride";
  if (Markov)
    Label += "+markov";
  if (Pin)
    Label += "+pinned";
  if (Adaptive)
    Label += "+adaptive";
  return Label;
}

std::vector<ExperimentSpec> hds::engine::defaultMatrix(double Scale) {
  static const core::RunMode Modes[] = {
      core::RunMode::Original,        core::RunMode::ChecksOnly,
      core::RunMode::Profile,         core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch, core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  std::vector<ExperimentSpec> Specs;
  for (const std::string &Name : workloads::allWorkloadNames())
    for (core::RunMode Mode : Modes) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = Mode;
      Spec.Scale = Scale;
      Specs.push_back(Spec);
    }
  return Specs;
}

bool hds::engine::applyFilter(std::vector<ExperimentSpec> &Specs,
                              const std::string &Filter,
                              std::string *Error) {
  const size_t Eq = Filter.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Filter.size()) {
    if (Error)
      *Error = "filter '" + Filter + "' is not of the form key=value";
    return false;
  }
  const std::string Key = Filter.substr(0, Eq);
  const std::string Value = Filter.substr(Eq + 1);

  auto Keep = [&](auto Pred) {
    std::vector<ExperimentSpec> Kept;
    for (const ExperimentSpec &Spec : Specs)
      if (Pred(Spec))
        Kept.push_back(Spec);
    Specs = std::move(Kept);
  };

  if (Key == "workload") {
    Keep([&](const ExperimentSpec &S) { return S.Workload == Value; });
    return true;
  }
  if (Key == "mode") {
    core::RunMode Mode;
    if (!core::parseRunModeToken(Value, Mode)) {
      if (Error)
        *Error = "unknown mode '" + Value +
                 "' (expected original|base|prof|hds|nopref|seqpref|dynpref)";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Mode == Mode; });
    return true;
  }
  if (Key == "seed") {
    char *End = nullptr;
    const uint64_t Seed = std::strtoull(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0') {
      if (Error)
        *Error = "seed '" + Value + "' is not a decimal integer";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Seed == Seed; });
    return true;
  }
  if (Error)
    *Error = "unknown filter key '" + Key +
             "' (expected workload, mode, or seed)";
  return false;
}
