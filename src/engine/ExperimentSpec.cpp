//===- engine/ExperimentSpec.cpp - One cell of the run matrix -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentSpec.h"

#include "prefetch/Prefetcher.h"
#include "workloads/Workload.h"

#include <cstdlib>

using namespace hds;
using namespace hds::engine;

core::OptimizerConfig ExperimentSpec::materializeConfig() const {
  core::OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Dfsm.HeadLength = HeadLength;
  Config.Prefetchers.Enabled = Prefetchers;
  Config.PinFirstOptimization = Pin;
  Config.AdaptiveHibernation = Adaptive;
  Config.Tuning.Enabled = Tuned;
  return Config;
}

std::string ExperimentSpec::label() const {
  std::string Label = Workload + "/" + core::runModeToken(Mode);
  if (Seed != 0) {
    Label += '@';
    Label += std::to_string(Seed);
  }
  // Kind-order suffixes, same order the old per-kind booleans printed.
  for (unsigned I = 0; I < prefetch::PrefetcherSelection::NumKinds; ++I) {
    const auto K = static_cast<prefetch::Prefetcher::Kind>(I);
    if (Prefetchers.has(K)) {
      Label += '+';
      Label += prefetch::Prefetcher::kindToken(K);
    }
  }
  if (Pin)
    Label += "+pinned";
  if (Adaptive)
    Label += "+adaptive";
  if (Tuned)
    Label += "+tuned";
  return Label;
}

std::vector<ExperimentSpec> hds::engine::defaultMatrix(double Scale) {
  std::vector<ExperimentSpec> Specs;
  for (const std::string &Name : workloads::allWorkloadNames())
    for (core::RunMode Mode : core::allRunModes()) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = Mode;
      Spec.Scale = Scale;
      Specs.push_back(Spec);
    }
  // Hardware prefetcher zoo bars: each prefetcher alone against the
  // unmodified program, so its cycles compare directly with the Original
  // baseline and the software scheme's Dyn-pref bar.
  for (const std::string &Name : workloads::allWorkloadNames())
    for (unsigned Which = 0; Which < prefetch::PrefetcherSelection::NumKinds;
         ++Which) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = core::RunMode::Original;
      Spec.Scale = Scale;
      Spec.Prefetchers.set(static_cast<prefetch::Prefetcher::Kind>(Which),
                           true);
      Specs.push_back(Spec);
    }
  // Closed-loop tuning bars (appended so the cells above keep their
  // positions): the software scheme's Dyn-pref with the controller on,
  // plus the two zoo engines with a degree knob (docs/tuning.md).
  for (const std::string &Name : workloads::allWorkloadNames()) {
    ExperimentSpec Dyn;
    Dyn.Workload = Name;
    Dyn.Mode = core::RunMode::DynamicPrefetch;
    Dyn.Scale = Scale;
    Dyn.Tuned = true;
    Specs.push_back(Dyn);
    for (const prefetch::Prefetcher::Kind K :
         {prefetch::Prefetcher::Stream, prefetch::Prefetcher::PairTable}) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = core::RunMode::Original;
      Spec.Scale = Scale;
      Spec.Prefetchers.set(K, true);
      Spec.Tuned = true;
      Specs.push_back(Spec);
    }
  }
  return Specs;
}

bool hds::engine::applyFilter(std::vector<ExperimentSpec> &Specs,
                              const std::string &Filter,
                              std::string *Error) {
  const size_t Eq = Filter.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Filter.size()) {
    if (Error)
      *Error = "filter '" + Filter + "' is not of the form key=value";
    return false;
  }
  const std::string Key = Filter.substr(0, Eq);
  const std::string Value = Filter.substr(Eq + 1);

  auto Keep = [&](auto Pred) {
    std::vector<ExperimentSpec> Kept;
    for (const ExperimentSpec &Spec : Specs)
      if (Pred(Spec))
        Kept.push_back(Spec);
    Specs = std::move(Kept);
  };

  if (Key == "workload") {
    Keep([&](const ExperimentSpec &S) { return S.Workload == Value; });
    return true;
  }
  if (Key == "mode") {
    core::RunMode Mode;
    if (!core::parseRunModeToken(Value, Mode)) {
      if (Error)
        *Error = "unknown mode '" + Value + "' (expected " +
                 core::runModeTokenList() + ")";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Mode == Mode; });
    return true;
  }
  if (Key == "seed") {
    char *End = nullptr;
    const uint64_t Seed = std::strtoull(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0') {
      if (Error)
        *Error = "seed '" + Value + "' is not a decimal integer";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Seed == Seed; });
    return true;
  }
  if (Key == "prefetcher") {
    if (Value == "none") {
      Keep([&](const ExperimentSpec &S) { return S.Prefetchers.none(); });
      return true;
    }
    prefetch::Prefetcher::Kind Kind;
    if (!prefetch::Prefetcher::parseKindToken(Value, Kind)) {
      if (Error)
        *Error = "unknown prefetcher '" + Value + "' (expected " +
                 prefetch::PrefetcherSelection::tokenList() + ")";
      return false;
    }
    Keep([&](const ExperimentSpec &S) {
      // The named prefetcher, enabled alone (duel cells enable only
      // Duel; the roster defaults to all four candidates).
      if (Kind == prefetch::Prefetcher::Duel)
        return S.Prefetchers.has(prefetch::Prefetcher::Duel);
      return S.Prefetchers.only(Kind);
    });
    return true;
  }
  if (Key == "tuning") {
    if (Value == "adaptive") {
      Keep([&](const ExperimentSpec &S) { return S.Tuned; });
      return true;
    }
    if (Value == "fixed") {
      Keep([&](const ExperimentSpec &S) { return !S.Tuned; });
      return true;
    }
    if (Error)
      *Error = "unknown tuning '" + Value + "' (expected adaptive|fixed)";
    return false;
  }
  if (Error)
    *Error = "unknown filter key '" + Key +
             "' (expected workload, mode, seed, prefetcher, or tuning)";
  return false;
}

std::string hds::engine::filterHelp() {
  return "filters: workload=<name>  mode=<" + core::runModeTokenList() +
         ">  seed=<n>\n         prefetcher=<" +
         prefetch::PrefetcherSelection::tokenList() +
         ">  tuning=<adaptive|fixed>\n";
}
