//===- engine/ExperimentSpec.cpp - One cell of the run matrix -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ExperimentSpec.h"

#include "prefetch/Prefetcher.h"
#include "workloads/Workload.h"

#include <cstdlib>

using namespace hds;
using namespace hds::engine;

core::OptimizerConfig ExperimentSpec::materializeConfig() const {
  core::OptimizerConfig Config;
  Config.Mode = Mode;
  Config.Dfsm.HeadLength = HeadLength;
  Config.Prefetchers.Stride = Stride;
  Config.Prefetchers.Markov = Markov;
  Config.Prefetchers.Stream = Stream;
  Config.Prefetchers.Pair = Pair;
  Config.Prefetchers.Duel = Duel;
  Config.PinFirstOptimization = Pin;
  Config.AdaptiveHibernation = Adaptive;
  return Config;
}

std::string ExperimentSpec::label() const {
  std::string Label = Workload + "/" + core::runModeToken(Mode);
  if (Seed != 0) {
    Label += '@';
    Label += std::to_string(Seed);
  }
  if (Stride)
    Label += "+stride";
  if (Markov)
    Label += "+markov";
  if (Stream)
    Label += "+stream";
  if (Pair)
    Label += "+pair";
  if (Duel)
    Label += "+duel";
  if (Pin)
    Label += "+pinned";
  if (Adaptive)
    Label += "+adaptive";
  return Label;
}

std::vector<ExperimentSpec> hds::engine::defaultMatrix(double Scale) {
  static const core::RunMode Modes[] = {
      core::RunMode::Original,        core::RunMode::ChecksOnly,
      core::RunMode::Profile,         core::RunMode::ProfileAnalyze,
      core::RunMode::MatchNoPrefetch, core::RunMode::SequentialPrefetch,
      core::RunMode::DynamicPrefetch};
  std::vector<ExperimentSpec> Specs;
  for (const std::string &Name : workloads::allWorkloadNames())
    for (core::RunMode Mode : Modes) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = Mode;
      Spec.Scale = Scale;
      Specs.push_back(Spec);
    }
  // Hardware prefetcher zoo bars: each prefetcher alone against the
  // unmodified program, so its cycles compare directly with the Original
  // baseline and the software scheme's Dyn-pref bar.
  for (const std::string &Name : workloads::allWorkloadNames())
    for (int Which = 0; Which < 5; ++Which) {
      ExperimentSpec Spec;
      Spec.Workload = Name;
      Spec.Mode = core::RunMode::Original;
      Spec.Scale = Scale;
      Spec.Stride = Which == 0;
      Spec.Markov = Which == 1;
      Spec.Stream = Which == 2;
      Spec.Pair = Which == 3;
      Spec.Duel = Which == 4;
      Specs.push_back(Spec);
    }
  return Specs;
}

bool hds::engine::applyFilter(std::vector<ExperimentSpec> &Specs,
                              const std::string &Filter,
                              std::string *Error) {
  const size_t Eq = Filter.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Filter.size()) {
    if (Error)
      *Error = "filter '" + Filter + "' is not of the form key=value";
    return false;
  }
  const std::string Key = Filter.substr(0, Eq);
  const std::string Value = Filter.substr(Eq + 1);

  auto Keep = [&](auto Pred) {
    std::vector<ExperimentSpec> Kept;
    for (const ExperimentSpec &Spec : Specs)
      if (Pred(Spec))
        Kept.push_back(Spec);
    Specs = std::move(Kept);
  };

  if (Key == "workload") {
    Keep([&](const ExperimentSpec &S) { return S.Workload == Value; });
    return true;
  }
  if (Key == "mode") {
    core::RunMode Mode;
    if (!core::parseRunModeToken(Value, Mode)) {
      if (Error)
        *Error = "unknown mode '" + Value +
                 "' (expected original|base|prof|hds|nopref|seqpref|dynpref)";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Mode == Mode; });
    return true;
  }
  if (Key == "seed") {
    char *End = nullptr;
    const uint64_t Seed = std::strtoull(Value.c_str(), &End, 10);
    if (End == Value.c_str() || *End != '\0') {
      if (Error)
        *Error = "seed '" + Value + "' is not a decimal integer";
      return false;
    }
    Keep([&](const ExperimentSpec &S) { return S.Seed == Seed; });
    return true;
  }
  if (Key == "prefetcher") {
    if (Value == "none") {
      Keep([&](const ExperimentSpec &S) {
        return !S.Stride && !S.Markov && !S.Stream && !S.Pair && !S.Duel;
      });
      return true;
    }
    prefetch::Prefetcher::Kind Kind;
    if (!prefetch::Prefetcher::parseKindToken(Value, Kind)) {
      if (Error)
        *Error = "unknown prefetcher '" + Value +
                 "' (expected none|stride|markov|stream|pair|duel)";
      return false;
    }
    Keep([&](const ExperimentSpec &S) {
      // The named prefetcher, enabled alone (duel cells enable only
      // Duel; the roster defaults to all four candidates).
      switch (Kind) {
      case prefetch::Prefetcher::Stride:
        return S.Stride && !S.Markov && !S.Stream && !S.Pair && !S.Duel;
      case prefetch::Prefetcher::Markov:
        return S.Markov && !S.Stride && !S.Stream && !S.Pair && !S.Duel;
      case prefetch::Prefetcher::Stream:
        return S.Stream && !S.Stride && !S.Markov && !S.Pair && !S.Duel;
      case prefetch::Prefetcher::PairTable:
        return S.Pair && !S.Stride && !S.Markov && !S.Stream && !S.Duel;
      case prefetch::Prefetcher::Duel:
        return S.Duel;
      }
      return false; // unreachable: parseKindToken covers every Kind
    });
    return true;
  }
  if (Error)
    *Error = "unknown filter key '" + Key +
             "' (expected workload, mode, seed, or prefetcher)";
  return false;
}
