//===- engine/MetricRegistry.h - Catalog of every exported metric -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for what the engine exports: every scalar
/// metric that appears in the wire protocol and the results JSON,
/// grouped into named blocks, with its stable id, unit, and
/// documentation string (obs::MetricDef).  The registry is built from
/// the same visit*Metrics enumerations the serializers walk, so it can
/// never drift from what encodeResult/emitResult actually produce — a
/// test asserts ids are unique within each block and that every block's
/// order matches the enumeration order.
///
/// Also centralizes the spec-echo fields that identify a result cell
/// (specIdentityFields), shared by the --diff cell pairing and anything
/// else that needs to tell "which experiment" apart from "what it
/// measured".
///
/// The registry is append-only by construction: the enumerations it is
/// built from obey the contract in obs/Metrics.h.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_METRICREGISTRY_H
#define HDS_ENGINE_METRICREGISTRY_H

#include "obs/Metrics.h"

#include <cstddef>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// One named group of metrics: a JSON object (or array-element object)
/// in the results document, and the matching counter block on the wire.
struct MetricBlock {
  /// Block name.  "result" covers the flat per-run counters; "phase" is
  /// one element of the "phases" array; "memory" the hierarchy object;
  /// "cache" the shape shared by "l1" and "l2"; "cycle_breakdown" the
  /// attributed cycle account; "stream" one element of "streams".
  const char *Name;
  std::vector<obs::MetricDef> Metrics;
};

/// Every metric block the engine serializes, in document order.  Built
/// once, on first use; safe to call from multiple threads afterwards.
const std::vector<MetricBlock> &metricRegistry();

/// The spec-echo fields forming a result cell's identity (everything
/// else in a result object is a metric to compare).  Order matters: it
/// is the order identity keys are printed in --diff cell headers.
const std::vector<const char *> &specIdentityFields();

/// Looks up a metric by block name and id; nullptr when absent.
const obs::MetricDef *findMetric(const char *Block, const std::string &Id);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_METRICREGISTRY_H
