//===- engine/Executor.cpp - Transport-agnostic matrix execution ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Executor.h"

#include <utility>

using namespace hds;
using namespace hds::engine;

Executor::~Executor() = default;

std::vector<RunResult> Executor::run(
    std::span<const ExperimentSpec> Specs,
    std::function<void(std::size_t, const RunResult &)> OnResult) {
  ResultSink Sink(Specs.size());
  if (OnResult)
    Sink.setCallback(std::move(OnResult));
  runAll(Specs, Sink);
  std::vector<RunResult> Results = Sink.take();
  // Jobs dropped by cancellation never delivered; label their slots with
  // the spec they would have run so every result is self-describing.
  for (std::size_t Index = 0; Index < Results.size(); ++Index)
    if (Results[Index].State == RunResult::Status::Cancelled)
      Results[Index].Spec = Specs[Index];
  return Results;
}
