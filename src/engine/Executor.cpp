//===- engine/Executor.cpp - Transport-agnostic matrix execution ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Executor.h"

#include "engine/JobScheduler.h"

#include <cerrno>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

using namespace hds;
using namespace hds::engine;

Executor::~Executor() = default;

std::vector<RunResult> Executor::run(
    std::span<const ExperimentSpec> Specs,
    std::function<void(std::size_t, const RunResult &)> OnResult) {
  ResultSink Sink(Specs.size());
  if (OnResult)
    Sink.setCallback(std::move(OnResult));
  runAll(Specs, Sink);
  std::vector<RunResult> Results = Sink.take();
  // Jobs dropped by cancellation never delivered; label their slots with
  // the spec they would have run so every result is self-describing.
  for (std::size_t Index = 0; Index < Results.size(); ++Index)
    if (Results[Index].State == RunResult::Status::Cancelled)
      Results[Index].Spec = Specs[Index];
  return Results;
}

void LocalExecutor::runAll(std::span<const ExperimentSpec> Specs,
                           ResultSink &Sink) {
  JobScheduler Scheduler(Opts.Jobs);
  for (std::size_t Index = 0; Index < Specs.size(); ++Index) {
    const ExperimentSpec &Spec = Specs[Index];
    const std::atomic<bool> *Cancel = Opts.CancelRequested;
    Scheduler.submit([Index, &Spec, &Sink, Cancel, &Scheduler] {
      if (Cancel && Cancel->load(std::memory_order_relaxed)) {
        // Drop everything still queued too, so cancellation takes
        // effect promptly instead of once per remaining job.
        Scheduler.cancel();
        RunResult Cancelled;
        Cancelled.Spec = Spec;
        Sink.deliver(Index, std::move(Cancelled));
        return;
      }
      Sink.deliver(Index, runExperiment(Spec));
    });
  }
  Scheduler.wait();
}

SocketExecutor::SocketExecutor(const Options &OptsIn)
    : Opts(OptsIn), Dispatch(OptsIn.Coordinator) {
  Listening = Dispatch.listen();
}

void SocketExecutor::runAll(std::span<const ExperimentSpec> Specs,
                            ResultSink &Sink) {
  // Forked before serve() starts any service thread, so each child is a
  // clean single-threaded process running the worker loop.
  std::vector<pid_t> Children;
  if (Listening) {
    for (unsigned I = 0; I < Opts.ForkedWorkers; ++I) {
      const pid_t Child = ::fork();
      if (Child == 0) {
        const WorkerExit Exit = runWorker(Dispatch.boundAddress(), Opts.Worker);
        ::_exit(Exit == WorkerExit::CleanShutdown ? 0 : 1);
      }
      if (Child > 0)
        Children.push_back(Child);
      // fork() failure: serve() still runs — external workers may
      // connect, and the idle deadline bounds the no-worker case.
    }
  }

  // An unbound coordinator resolves every slot as an error (never hangs).
  Dispatch.serve(Specs, Sink);

  for (const pid_t Child : Children) {
    int WaitStatus = 0;
    while (::waitpid(Child, &WaitStatus, 0) < 0 && errno == EINTR) {
    }
  }
}
