//===- engine/Coordinator.h - Distributed matrix coordinator ---*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of the distributed matrix runner: it listens on
/// a transport address, hands spec indices to workers *pull-style* (a
/// worker asks for a job whenever it is free, so fast workers naturally
/// take more cells), and merges the returned (index, RunResult) pairs
/// through the same index-addressed ResultSink the in-process engine
/// uses — which is exactly why a distributed run aggregates to the same
/// bytes as a local one (docs/engine.md, "Distributed mode").
///
/// Failure policy: a worker that disconnects, times out, or talks
/// garbage gets its in-flight job re-queued, up to a bounded per-job
/// retry budget; after the budget is exhausted the job resolves as
/// Status::Error with a reason.  A coordinator with unresolved jobs and
/// no connected workers fails the remainder after an idle deadline.
/// Every job therefore resolves — the matrix can degrade but never hang.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_COORDINATOR_H
#define HDS_ENGINE_COORDINATOR_H

#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"
#include "engine/Transport.h"

#include <cstdint>
#include <span>
#include <string>

namespace hds {
namespace engine {

struct CoordinatorOptions {
  /// "host:port" (port 0 = ephemeral) or "unix:/path".
  std::string ListenAddr = "127.0.0.1:0";
  /// Per-job result deadline: how long a worker may hold an assignment
  /// before the coordinator re-queues it.  Also bounds every send/recv.
  uint32_t JobTimeoutMs = 120000;
  /// With unresolved jobs and zero connected workers, give up after
  /// this long and resolve the remainder as errors instead of hanging.
  uint32_t IdleTimeoutMs = 30000;
  /// Re-queues per job before it resolves as Status::Error.
  unsigned RetryBudget = 2;
};

/// Serves one experiment matrix to pull-style workers.
class Coordinator {
public:
  explicit Coordinator(const CoordinatorOptions &OptsIn);

  /// Binds the listener.  On failure returns false and error() says why;
  /// serve() on an unbound coordinator resolves every job as an error.
  bool listen();
  const std::string &error() const { return ListenError; }

  /// Address workers should connect to (the real ephemeral port when
  /// ListenAddr asked for port 0).  Valid after listen() succeeds.
  const std::string &boundAddress() const { return Sockets.boundAddress(); }

  /// Dispatches every spec and blocks until each sink slot is resolved
  /// (result delivered or error after retries).  Spawns one service
  /// thread per connected worker; all threads are joined before
  /// returning.
  void serve(std::span<const ExperimentSpec> Specs, ResultSink &Sink);

private:
  struct ServeState;
  void handleWorker(Connection Conn, ServeState &State);

  CoordinatorOptions Opts;
  Listener Sockets;
  std::string ListenError;
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_COORDINATOR_H
