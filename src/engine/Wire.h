//===- engine/Wire.h - Binary wire format for distributed runs -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned, length-prefixed binary frame format the distributed
/// matrix runner speaks: ExperimentSpec assignments travel coordinator →
/// worker, (index, RunResult) pairs travel back.  Every frame carries a
/// magic, a protocol version byte, a type byte, a little-endian payload
/// length, and a CRC32 trailer; decodeFrame rejects truncated, oversized,
/// corrupt, version-skewed, and unknown-type frames with an error message
/// instead of undefined behavior (the fault-injection tests feed it
/// arbitrary garbage under ASan).
///
/// Payloads are sequences of explicit field tags.  Unknown tags are a
/// decode error — the protocol is versioned, so skew is detected at the
/// frame header, not papered over per field.  Counter blocks reuse the
/// stable visit*Metrics field enumerations (core/RunStats.h,
/// memsim/Cache.h, memsim/MemoryHierarchy.h, obs/CycleAccount.h,
/// obs/PrefetchStats.h — see obs/Metrics.h for the append-only
/// contract), so encode and decode can never disagree on field order.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_WIRE_H
#define HDS_ENGINE_WIRE_H

#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace engine {
namespace wire {

/// Bumped whenever the frame layout or any payload encoding changes.
/// v2: cycle-breakdown and per-stream prefetch-effectiveness sections in
/// Result payloads; prefetch-classification counters appended to the
/// hierarchy counter block.
/// v3: wall-clock timing section (ResultTiming gauges) in Result
/// payloads, so bench workers report accesses/sec alongside cycles.
/// v4: per-prefetcher stats section (ResultPrefetchers) in Result
/// payloads; stream/pair/duel prefetcher spec flags.
/// v5: tuned spec flag (closed-loop degree/distance control); tuning
/// gauges appended to the stream and prefetcher counter blocks.
/// v6: fleet service — Hello carries worker capabilities, the
/// Challenge/AuthProof frames implement the authenticated hello
/// (docs/fleet.md, "Trust model"), Heartbeat frames carry liveness, and
/// CheckpointHeader opens an on-disk checkpoint journal (never sent
/// over a socket).
constexpr uint8_t ProtocolVersion = 6;

/// First two frame bytes; a cheap guard against cross-protocol garbage.
constexpr uint8_t Magic0 = 0x48; // 'H'
constexpr uint8_t Magic1 = 0x44; // 'D'

/// Hard ceiling on payload size.  A RunResult is a few KB; anything near
/// this limit is a corrupt length field, not a real message.
constexpr uint32_t MaxPayloadBytes = 1u << 20;

/// Fixed frame overhead: magic(2) + version(1) + type(1) + length(4)
/// header, CRC32(4) trailer.
constexpr std::size_t HeaderBytes = 8;
constexpr std::size_t TrailerBytes = 4;

// hds-schema-enum, hds-exhaustive
enum class FrameType : uint8_t {
  /// Worker → coordinator, once after connecting.  Tagged worker
  /// capabilities (v6); the version byte in the frame header is the
  /// first half of the handshake, the Challenge/AuthProof exchange the
  /// second.
  Hello = 1,
  /// Worker → coordinator: "give me a job".  Empty payload.
  JobRequest = 2,
  /// Coordinator → worker: spec index + ExperimentSpec fields.
  Assign = 3,
  /// Worker → coordinator: spec index + RunResult fields.
  Result = 4,
  /// Coordinator → worker: matrix resolved, disconnect cleanly.
  Shutdown = 5,
  /// Coordinator → worker: 16-byte anti-replay nonce; the worker must
  /// answer with AuthProof before any job flows (v6).
  Challenge = 6,
  /// Worker → coordinator: keyed digest over (token, nonce, version) —
  /// see fleet/Auth.h for the construction and docs/fleet.md for what
  /// it does and does not defend against (v6).
  AuthProof = 7,
  /// Worker → coordinator: liveness beacon sent on an interval from a
  /// side thread even while a job is running.  Empty payload (v6).
  Heartbeat = 8,
  /// First frame of an on-disk checkpoint journal, never sent over a
  /// socket: matrix fingerprint + the full spec list, so `hds_fleet
  /// resume` can rebuild the matrix from the journal alone (v6).
  CheckpointHeader = 9,
};

struct Frame {
  FrameType Type = FrameType::Hello;
  std::vector<uint8_t> Payload;
};

/// CRC32 (IEEE 802.3 polynomial) of \p Size bytes at \p Data.
uint32_t crc32(const uint8_t *Data, std::size_t Size);

/// Encodes one complete frame (header + payload + CRC trailer).
std::vector<uint8_t> encodeFrame(FrameType Type,
                                 const std::vector<uint8_t> &Payload);

enum class DecodeStatus : uint8_t {
  Ok,        ///< one frame decoded; Consumed bytes were eaten
  NeedMore,  ///< the buffer holds a valid prefix of a frame
  Malformed, ///< bad magic/version/type/length/CRC; Error says which
};

/// Decodes the first complete frame in [Data, Data+Size).  On Ok fills
/// \p Out and \p Consumed; on Malformed fills \p Error.  Never reads past
/// \p Size and never accepts a frame whose declared payload exceeds
/// MaxPayloadBytes.
DecodeStatus decodeFrame(const uint8_t *Data, std::size_t Size, Frame &Out,
                         std::size_t &Consumed, std::string &Error);

//===----------------------------------------------------------------------===//
// Payload primitives: little-endian u64, length-prefixed strings.
//===----------------------------------------------------------------------===//

void appendU64(std::vector<uint8_t> &Out, uint64_t Value);
void appendString(std::vector<uint8_t> &Out, const std::string &Value);

/// Bounds-checked sequential reader over a payload.
class Reader {
public:
  Reader(const uint8_t *DataIn, std::size_t SizeIn)
      : Data(DataIn), Size(SizeIn) {}
  explicit Reader(const std::vector<uint8_t> &Payload)
      : Data(Payload.data()), Size(Payload.size()) {}

  bool readU8(uint8_t &Value);
  bool readU64(uint64_t &Value);
  /// Rejects lengths that run past the payload end.
  bool readString(std::string &Value);
  bool atEnd() const { return Pos == Size; }
  std::size_t remaining() const { return Size - Pos; }

private:
  const uint8_t *Data;
  std::size_t Size;
  std::size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Message payloads
//===----------------------------------------------------------------------===//

/// Assign payload: spec index + tagged ExperimentSpec fields.
std::vector<uint8_t> encodeAssign(uint64_t Index, const ExperimentSpec &Spec);
bool decodeAssign(const std::vector<uint8_t> &Payload, uint64_t &Index,
                  ExperimentSpec &Spec, std::string &Error);

/// Result payload: spec index + tagged RunResult fields (spec echoed).
std::vector<uint8_t> encodeResult(uint64_t Index, const RunResult &Result);
bool decodeResult(const std::vector<uint8_t> &Payload, uint64_t &Index,
                  RunResult &Result, std::string &Error);

/// One tagged ExperimentSpec field block — the spec section of an Assign
/// payload, exposed so the checkpoint journal header (fleet/Checkpoint.h)
/// and the matrix fingerprint reuse the exact Assign byte encoding.
void encodeSpec(std::vector<uint8_t> &Out, const ExperimentSpec &Spec);
bool decodeSpec(Reader &R, ExperimentSpec &Spec, std::string &Error);

/// Worker capability announcement carried by Hello (v6).  Zero means
/// "not declared"; capabilities inform the registry, never scheduling —
/// assignment stays pull-style so the aggregate bytes cannot depend on
/// fleet shape.
struct HelloInfo {
  uint64_t Cores = 0;
  uint64_t MemoryBudgetMB = 0;
};
std::vector<uint8_t> encodeHello(const HelloInfo &Info);
bool decodeHello(const std::vector<uint8_t> &Payload, HelloInfo &Info,
                 std::string &Error);

/// Challenge payload: the 16-byte anti-replay nonce, hi then lo word.
std::vector<uint8_t> encodeChallenge(uint64_t NonceHi, uint64_t NonceLo);
bool decodeChallenge(const std::vector<uint8_t> &Payload, uint64_t &NonceHi,
                     uint64_t &NonceLo, std::string &Error);

/// AuthProof payload: the worker's keyed digest (fleet/Auth.h).
std::vector<uint8_t> encodeAuthProof(uint64_t Digest);
bool decodeAuthProof(const std::vector<uint8_t> &Payload, uint64_t &Digest,
                     std::string &Error);

} // namespace wire
} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_WIRE_H
