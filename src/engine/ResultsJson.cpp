//===- engine/ResultsJson.cpp - Machine-readable results ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ResultsJson.h"

#include "obs/CycleAccount.h"
#include "obs/PrefetchStats.h"
#include "prefetch/Prefetcher.h"

#include <cstdio>

using namespace hds;
using namespace hds::engine;

namespace {

std::string formatDouble(double Value, const char *Format) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Format, Value);
  return Buf;
}

const char *statusName(RunResult::Status State) {
  switch (State) {
  case RunResult::Status::Ok:
    return "ok";
  case RunResult::Status::Error:
    return "error";
  case RunResult::Status::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

/// The Original-mode baseline a result's overhead is normalized to, or
/// nullptr when the result set has none: same workload/scale/seed and
/// iteration override, no hardware prefetchers, completed successfully.
const RunResult *findBaseline(const std::vector<RunResult> &Results,
                              const ExperimentSpec &Spec) {
  for (const RunResult &Candidate : Results) {
    const ExperimentSpec &C = Candidate.Spec;
    if (Candidate.ok() && C.Mode == core::RunMode::Original &&
        C.Prefetchers.none() && !C.Tuned && C.Workload == Spec.Workload &&
        C.Scale == Spec.Scale && C.Seed == Spec.Seed &&
        C.Iterations == Spec.Iterations)
      return &Candidate;
  }
  return nullptr;
}

/// Tiny append-only JSON builder: tracks indent and comma placement so
/// the emitting code reads like the schema.
class JsonBuilder {
public:
  std::string take() { return std::move(Out); }

  void openObject(const char *Key = nullptr) { open(Key, '{'); }
  void openArray(const char *Key = nullptr) { open(Key, '['); }

  void close(char Bracket) {
    --Depth;
    Out += '\n';
    indent();
    Out += Bracket;
    NeedComma = true;
  }

  void field(const char *Key, const std::string &RawValue) {
    comma();
    indent();
    Out += '"';
    Out += Key;
    Out += "\": ";
    Out += RawValue;
    NeedComma = true;
  }

  void field(const char *Key, uint64_t Value) {
    field(Key, std::to_string(Value));
  }

  void fieldString(const char *Key, const std::string &Value) {
    std::string Quoted(1, '"');
    Quoted += jsonEscape(Value);
    Quoted += '"';
    field(Key, Quoted);
  }

  void fieldBool(const char *Key, bool Value) {
    field(Key, Value ? "true" : "false");
  }

  /// Embeds \p Raw verbatim as the value of \p Key (caller guarantees it
  /// is well-formed JSON).
  void fieldRaw(const char *Key, const std::string &Raw) {
    field(Key, Raw);
  }

private:
  void open(const char *Key, char Bracket) {
    comma();
    indent();
    if (Key) {
      Out += '"';
      Out += Key;
      Out += "\": ";
    }
    Out += Bracket;
    ++Depth;
    NeedComma = false;
  }

  void comma() {
    if (NeedComma)
      Out += ',';
    Out += '\n';
  }

  void indent() { Out.append(static_cast<size_t>(Depth) * 2, ' '); }

  std::string Out = "{";
  int Depth = 1;
  bool NeedComma = false;
};

/// Emits every counter of a visit*Metrics enumeration as "id": value.
/// The metric ids double as the JSON keys, so the schema follows the
/// append-only metric contract (obs/Metrics.h) automatically.
struct MetricFieldEmitter {
  JsonBuilder &Json;
  template <typename FieldT>
  void operator()(const obs::MetricDef &Def, const FieldT &Field) const {
    Json.field(Def.Id, static_cast<uint64_t>(Field));
  }
};

void emitCacheStats(JsonBuilder &Json, const char *Key,
                    const memsim::CacheStats &Stats) {
  Json.openObject(Key);
  memsim::visitCacheStatsMetrics(Stats, MetricFieldEmitter{Json});
  Json.close('}');
}

void emitResult(JsonBuilder &Json, const RunResult &Result,
                const RunResult *Baseline, bool IncludeTiming) {
  const ExperimentSpec &Spec = Result.Spec;
  Json.openObject();
  Json.fieldString("workload", Spec.Workload);
  Json.fieldString("mode", core::runModeToken(Spec.Mode));
  Json.fieldString("mode_name", core::runModeName(Spec.Mode));
  Json.field("scale", formatDouble(Spec.Scale, "%.6g"));
  Json.field("seed", Spec.Seed);
  Json.field("head_length", uint64_t{Spec.HeadLength});
  // Legacy per-kind identity fields, derived from the selection so old
  // documents keep diffing byte-identical.
  Json.fieldBool("stride", Spec.Prefetchers.has(prefetch::Prefetcher::Stride));
  Json.fieldBool("markov", Spec.Prefetchers.has(prefetch::Prefetcher::Markov));
  Json.fieldBool("pin", Spec.Pin);
  Json.fieldBool("adaptive", Spec.Adaptive);
  // Suffixed to stay clear of the "stream" metric id in the per-stream
  // rows (identity fields and metric ids share one namespace in diffs).
  Json.fieldBool("stream_pf",
                 Spec.Prefetchers.has(prefetch::Prefetcher::Stream));
  Json.fieldBool("pair_pf",
                 Spec.Prefetchers.has(prefetch::Prefetcher::PairTable));
  Json.fieldBool("duel_pf", Spec.Prefetchers.has(prefetch::Prefetcher::Duel));
  // Appended (append-only schema growth): closed-loop tuning axis.
  Json.fieldBool("tuned", Spec.Tuned);
  Json.fieldString("status", statusName(Result.State));
  if (!Result.Error.empty())
    Json.fieldString("error", Result.Error);
  if (!Result.ok()) {
    Json.close('}');
    return;
  }

  Json.field("iterations", Result.Iterations);
  Json.field("cycles", Result.Cycles);
  if (Baseline && Baseline->Cycles > 0)
    Json.field("overhead_pct",
               formatDouble(100.0 *
                                (static_cast<double>(Result.Cycles) -
                                 static_cast<double>(Baseline->Cycles)) /
                                static_cast<double>(Baseline->Cycles),
                            "%.4f"));

  core::visitRunStatsMetrics(Result.Stats, MetricFieldEmitter{Json});

  Json.openObject("memory");
  memsim::visitHierarchyStatsMetrics(Result.Memory, MetricFieldEmitter{Json});
  Json.close('}');

  emitCacheStats(Json, "l1", Result.L1);
  emitCacheStats(Json, "l2", Result.L2);

  Json.openArray("phases");
  for (const core::CycleStats &Phase : Result.Stats.Cycles) {
    Json.openObject();
    core::visitCycleStatsMetrics(Phase, MetricFieldEmitter{Json});
    Json.close('}');
  }
  Json.close(']');

  Json.openObject("cycle_breakdown");
  obs::visitCycleBreakdownMetrics(Result.Breakdown, MetricFieldEmitter{Json});
  Json.close('}');

  Json.openArray("streams");
  for (const obs::StreamPrefetchStats &Stream : Result.Streams) {
    Json.openObject();
    obs::visitStreamPrefetchStatsMetrics(Stream, MetricFieldEmitter{Json});
    Json.close('}');
  }
  Json.close(']');

  Json.openArray("prefetchers");
  for (const obs::PrefetcherStats &Pf : Result.Prefetchers) {
    Json.openObject();
    // "kind_name" because the locked numeric metric below already owns
    // the "kind" key (mode/mode_name follow the same split).
    Json.fieldString("kind_name", prefetch::Prefetcher::kindToken(
                                      static_cast<prefetch::Prefetcher::Kind>(
                                          static_cast<uint8_t>(Pf.Kind))));
    obs::visitPrefetcherStatsMetrics(Pf, MetricFieldEmitter{Json});
    Json.close('}');
  }
  Json.close(']');

  if (IncludeTiming) {
    Json.openObject("timing");
    engine::visitResultTimingMetrics(Result.Timing, MetricFieldEmitter{Json});
    Json.close('}');
  }

  Json.close('}');
}

} // namespace

std::string hds::engine::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string hds::engine::resultsToJson(const std::vector<RunResult> &Results,
                                       const TimingInfo &Timing) {
  JsonBuilder Json;
  Json.fieldString("schema", "hds-matrix-results-v1");
  Json.field("spec_count", uint64_t{Results.size()});

  Json.openArray("results");
  for (const RunResult &Result : Results)
    emitResult(Json, Result, findBaseline(Results, Result.Spec),
               Timing.IncludePerResult);
  Json.close(']');

  if (Timing.IncludeWall || !Timing.LintJson.empty()) {
    Json.openObject("timing");
    if (Timing.IncludeWall) {
      Json.field("wall_ms", Timing.WallMillis);
      Json.field("jobs", uint64_t{Timing.Jobs});
    }
    if (!Timing.LintJson.empty())
      Json.fieldRaw("lint", Timing.LintJson);
    Json.close('}');
  }

  Json.close('}');
  std::string Out = Json.take();
  Out += '\n';
  return Out;
}
