//===- engine/ResultsJson.cpp - Machine-readable results ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ResultsJson.h"

#include <cstdio>

using namespace hds;
using namespace hds::engine;

namespace {

std::string formatDouble(double Value, const char *Format) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Format, Value);
  return Buf;
}

const char *statusName(RunResult::Status State) {
  switch (State) {
  case RunResult::Status::Ok:
    return "ok";
  case RunResult::Status::Error:
    return "error";
  case RunResult::Status::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

/// The Original-mode baseline a result's overhead is normalized to, or
/// nullptr when the result set has none: same workload/scale/seed and
/// iteration override, no hardware prefetchers, completed successfully.
const RunResult *findBaseline(const std::vector<RunResult> &Results,
                              const ExperimentSpec &Spec) {
  for (const RunResult &Candidate : Results) {
    const ExperimentSpec &C = Candidate.Spec;
    if (Candidate.ok() && C.Mode == core::RunMode::Original && !C.Stride &&
        !C.Markov && C.Workload == Spec.Workload && C.Scale == Spec.Scale &&
        C.Seed == Spec.Seed && C.Iterations == Spec.Iterations)
      return &Candidate;
  }
  return nullptr;
}

/// Tiny append-only JSON builder: tracks indent and comma placement so
/// the emitting code reads like the schema.
class JsonBuilder {
public:
  std::string take() { return std::move(Out); }

  void openObject(const char *Key = nullptr) { open(Key, '{'); }
  void openArray(const char *Key = nullptr) { open(Key, '['); }

  void close(char Bracket) {
    --Depth;
    Out += '\n';
    indent();
    Out += Bracket;
    NeedComma = true;
  }

  void field(const char *Key, const std::string &RawValue) {
    comma();
    indent();
    Out += '"';
    Out += Key;
    Out += "\": ";
    Out += RawValue;
    NeedComma = true;
  }

  void field(const char *Key, uint64_t Value) {
    field(Key, std::to_string(Value));
  }

  void fieldString(const char *Key, const std::string &Value) {
    field(Key, "\"" + jsonEscape(Value) + "\"");
  }

  void fieldBool(const char *Key, bool Value) {
    field(Key, Value ? "true" : "false");
  }

  /// Embeds \p Raw verbatim as the value of \p Key (caller guarantees it
  /// is well-formed JSON).
  void fieldRaw(const char *Key, const std::string &Raw) {
    field(Key, Raw);
  }

private:
  void open(const char *Key, char Bracket) {
    comma();
    indent();
    if (Key) {
      Out += '"';
      Out += Key;
      Out += "\": ";
    }
    Out += Bracket;
    ++Depth;
    NeedComma = false;
  }

  void comma() {
    if (NeedComma)
      Out += ',';
    Out += '\n';
  }

  void indent() { Out.append(static_cast<size_t>(Depth) * 2, ' '); }

  std::string Out = "{";
  int Depth = 1;
  bool NeedComma = false;
};

void emitCacheStats(JsonBuilder &Json, const char *Key,
                    const memsim::CacheStats &Stats) {
  Json.openObject(Key);
  Json.field("hits", Stats.Hits);
  Json.field("misses", Stats.Misses);
  Json.field("demand_fills", Stats.DemandFills);
  Json.field("prefetch_fills", Stats.PrefetchFills);
  Json.field("evictions", Stats.Evictions);
  Json.field("useful_prefetches", Stats.UsefulPrefetches);
  Json.field("wasted_prefetches", Stats.WastedPrefetches);
  Json.close('}');
}

void emitResult(JsonBuilder &Json, const RunResult &Result,
                const RunResult *Baseline) {
  const ExperimentSpec &Spec = Result.Spec;
  Json.openObject();
  Json.fieldString("workload", Spec.Workload);
  Json.fieldString("mode", core::runModeToken(Spec.Mode));
  Json.fieldString("mode_name", core::runModeName(Spec.Mode));
  Json.field("scale", formatDouble(Spec.Scale, "%.6g"));
  Json.field("seed", Spec.Seed);
  Json.field("head_length", uint64_t{Spec.HeadLength});
  Json.fieldBool("stride", Spec.Stride);
  Json.fieldBool("markov", Spec.Markov);
  Json.fieldBool("pin", Spec.Pin);
  Json.fieldBool("adaptive", Spec.Adaptive);
  Json.fieldString("status", statusName(Result.State));
  if (!Result.Error.empty())
    Json.fieldString("error", Result.Error);
  if (!Result.ok()) {
    Json.close('}');
    return;
  }

  Json.field("iterations", Result.Iterations);
  Json.field("cycles", Result.Cycles);
  if (Baseline && Baseline->Cycles > 0)
    Json.field("overhead_pct",
               formatDouble(100.0 *
                                (static_cast<double>(Result.Cycles) -
                                 static_cast<double>(Baseline->Cycles)) /
                                static_cast<double>(Baseline->Cycles),
                            "%.4f"));

  const core::RunStats &Stats = Result.Stats;
  Json.field("accesses", Stats.TotalAccesses);
  Json.field("checks_executed", Stats.ChecksExecuted);
  Json.field("traced_refs", Stats.TracedRefs);
  Json.field("instrumented_site_hits", Stats.InstrumentedSiteHits);
  Json.field("match_clauses_scanned", Stats.MatchClausesScanned);
  Json.field("complete_matches", Stats.CompleteMatches);
  Json.field("prefetches_requested", Stats.PrefetchesRequested);
  Json.field("stale_frame_accesses", Stats.StaleFrameAccesses);

  Json.openObject("memory");
  Json.field("demand_accesses", Result.Memory.DemandAccesses);
  Json.field("stall_cycles", Result.Memory.StallCycles);
  Json.field("prefetches_issued", Result.Memory.PrefetchesIssued);
  Json.field("prefetches_dropped_queue_full",
             Result.Memory.PrefetchesDroppedQueueFull);
  Json.field("prefetches_redundant", Result.Memory.PrefetchesRedundant);
  Json.field("partial_hits", Result.Memory.PartialHits);
  Json.field("partial_hit_stall_cycles",
             Result.Memory.PartialHitStallCycles);
  Json.close('}');

  emitCacheStats(Json, "l1", Result.L1);
  emitCacheStats(Json, "l2", Result.L2);

  Json.openArray("phases");
  for (const core::CycleStats &Phase : Stats.Cycles) {
    Json.openObject();
    Json.field("traced_refs", Phase.TracedRefs);
    Json.field("hot_streams_detected", uint64_t{Phase.HotStreamsDetected});
    Json.field("streams_installed", uint64_t{Phase.StreamsInstalled});
    Json.field("dfsm_states", uint64_t{Phase.DfsmStates});
    Json.field("dfsm_transitions", uint64_t{Phase.DfsmTransitions});
    Json.field("check_clauses_injected",
               uint64_t{Phase.CheckClausesInjected});
    Json.field("procedures_modified", uint64_t{Phase.ProceduresModified});
    Json.field("sites_instrumented", uint64_t{Phase.SitesInstrumented});
    Json.field("grammar_rules", Phase.GrammarRules);
    Json.field("grammar_symbols", Phase.GrammarSymbols);
    Json.field("analysis_cost_cycles", Phase.AnalysisCostCycles);
    Json.field("next_hibernation_periods", Phase.NextHibernationPeriods);
    Json.close('}');
  }
  Json.close(']');

  Json.close('}');
}

} // namespace

std::string hds::engine::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string hds::engine::resultsToJson(const std::vector<RunResult> &Results,
                                       const TimingInfo &Timing) {
  JsonBuilder Json;
  Json.fieldString("schema", "hds-matrix-results-v1");
  Json.field("spec_count", uint64_t{Results.size()});

  Json.openArray("results");
  for (const RunResult &Result : Results)
    emitResult(Json, Result, findBaseline(Results, Result.Spec));
  Json.close(']');

  if (Timing.IncludeWall || !Timing.LintJson.empty()) {
    Json.openObject("timing");
    if (Timing.IncludeWall) {
      Json.field("wall_ms", Timing.WallMillis);
      Json.field("jobs", uint64_t{Timing.Jobs});
    }
    if (!Timing.LintJson.empty())
      Json.fieldRaw("lint", Timing.LintJson);
    Json.close('}');
  }

  Json.close('}');
  std::string Out = Json.take();
  Out += '\n';
  return Out;
}
