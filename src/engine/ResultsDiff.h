//===- engine/ResultsDiff.h - Compare two matrix result files --*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cell-by-cell comparison of two `hds-matrix-results-v1` JSON
/// documents (engine/ResultsJson.h).  Cells pair up by their full spec
/// echo (workload, mode, scale, seed, head length, flag set); within a
/// pair every scalar metric is compared, with a configurable relative
/// threshold separating noise from signal.  Changes classify as:
///
///   * regressions     — `cycles` grew past the threshold
///   * improvements    — `cycles` shrank past the threshold
///   * metric changes  — any other counter moved past the threshold
///   * status changes  — ok / error / cancelled flipped
///   * unmatched cells — present in only one document
///
/// regressed() is the CI verdict: true for regressions, metric changes,
/// status changes, or unmatched cells.  Improvements alone stay green.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_RESULTSDIFF_H
#define HDS_ENGINE_RESULTSDIFF_H

#include <cstddef>
#include <string>
#include <vector>

namespace hds {
namespace engine {

struct DiffOptions {
  /// Relative change (percent) a numeric metric must exceed to count as
  /// a difference.  0 = any change counts (exact comparison).
  double ThresholdPct = 0.0;
  /// Wall-clock gate for per-result "timing" objects (tools/hds_bench).
  /// Negative (the default) ignores every timing.* path — wall clock is
  /// machine noise, and a bench file must diff clean against a plain
  /// matrix file.  Non-negative compares timing.accesses_per_sec only: a
  /// drop beyond this percentage is a regression, a gain an improvement;
  /// timing.wall_ns is never compared (redundant with the rate), and a
  /// cell missing timing on either side is skipped, not flagged.
  double WallThresholdPct = -1.0;
};

/// One noteworthy difference, addressed by cell and described per field.
struct DiffLine {
  std::string Cell;   ///< human-readable spec key of the cell
  std::string Detail; ///< e.g. "cycles 18200 -> 20930 (+15.00%)"
};

struct DiffReport {
  std::vector<DiffLine> Regressions;
  std::vector<DiffLine> Improvements;
  std::vector<DiffLine> MetricChanges;
  std::vector<DiffLine> StatusChanges;
  std::vector<std::string> OnlyInA;
  std::vector<std::string> OnlyInB;
  std::size_t CellsCompared = 0;

  /// True when the comparison should fail a gate (see file comment).
  bool regressed() const {
    return !Regressions.empty() || !MetricChanges.empty() ||
           !StatusChanges.empty() || !OnlyInA.empty() || !OnlyInB.empty();
  }

  /// Renders the report as human-readable text (one finding per line,
  /// trailing verdict line).  \p NameA / \p NameB label the inputs.
  std::string render(const std::string &NameA, const std::string &NameB) const;
};

/// Parses both documents and fills \p Report.  Returns false — with a
/// description in \p Error — when either input is not a well-formed
/// hds-matrix-results-v1 document.
bool diffResults(const std::string &JsonA, const std::string &JsonB,
                 const DiffOptions &Opts, DiffReport &Report,
                 std::string &Error);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_RESULTSDIFF_H
