//===- engine/ResultSink.h - Deterministic result collection ---*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-safe collection point for per-job results, merged in *spec
/// order* rather than completion order.  This is the piece that makes
/// the engine's aggregate output byte-identical regardless of thread
/// count: workers deliver into a slot addressed by the job's matrix
/// index, and take() hands the slots back in index order once every one
/// is filled.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_RESULTSINK_H
#define HDS_ENGINE_RESULTSINK_H

#include "engine/ExperimentRunner.h"

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace hds {
namespace engine {

/// Index-addressed, mutex-protected result store for one matrix run.
class ResultSink {
public:
  explicit ResultSink(std::size_t SpecCount);

  /// Stores \p Result into slot \p Index (each slot exactly once) and
  /// invokes the progress callback, if any, under the sink lock — so
  /// callbacks are serialized even though they fire in completion order.
  void deliver(std::size_t Index, RunResult Result);

  /// Progress callback invoked by deliver (completion order, serialized).
  void setCallback(
      std::function<void(std::size_t, const RunResult &)> Callback);

  /// Number of slots filled so far.
  std::size_t completed() const;

  /// Moves out the merged results in spec order.  Unfilled slots (jobs
  /// dropped by cancellation) remain default-constructed with
  /// RunResult::Status::Cancelled.
  std::vector<RunResult> take();

private:
  mutable std::mutex Mutex;
  std::vector<RunResult> Results;  // hds-guarded-by(Mutex)
  std::vector<bool> Filled;        // hds-guarded-by(Mutex)
  std::size_t Completed = 0;       // hds-guarded-by(Mutex)
  std::function<void(std::size_t, const RunResult &)> Callback; // hds-guarded-by(Mutex)
};

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_RESULTSINK_H
