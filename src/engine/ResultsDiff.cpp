//===- engine/ResultsDiff.cpp - Compare two matrix result files -----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ResultsDiff.h"

#include "engine/MetricRegistry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

using namespace hds;
using namespace hds::engine;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader for the hds-matrix-results-v1 subset
//===----------------------------------------------------------------------===//
//
// Objects keep insertion order (a vector of pairs, never a hash map) so
// flattened metric paths enumerate in the stable order the writer
// emitted, and repeated diffs report findings in the same sequence.

struct JsonValue;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind Type = Kind::Null;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string StringValue; ///< also the raw token for numbers
  std::vector<JsonValue> Elements;
  JsonMembers Members;

  const JsonValue *find(const std::string &Key) const {
    for (const auto &[Name, Value] : Members)
      if (Name == Key)
        return &Value;
    return nullptr;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &TextIn, std::string &ErrorIn)
      : Text(TextIn), Error(ErrorIn) {}

  bool parse(JsonValue &Out) {
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after document");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const std::string &Message) {
    Error = "JSON parse error at byte " + std::to_string(Pos) + ": " + Message;
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char Expected) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != Expected)
      return fail(std::string("expected '") + Expected + "'");
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    const char C = Text[Pos];
    if (C == '{')
      return parseObject(Out, Depth);
    if (C == '[')
      return parseArray(Out, Depth);
    if (C == '"') {
      Out.Type = JsonValue::Kind::String;
      return parseString(Out.StringValue);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n') {
      Out.Type = JsonValue::Kind::Null;
      return parseLiteral("null");
    }
    return parseNumber(Out);
  }

  bool parseLiteral(const char *Word) {
    for (const char *P = Word; *P; ++P, ++Pos)
      if (Pos >= Text.size() || Text[Pos] != *P)
        return fail(std::string("expected '") + Word + "'");
    return true;
  }

  bool parseKeyword(JsonValue &Out) {
    Out.Type = JsonValue::Kind::Bool;
    if (Text[Pos] == 't') {
      Out.BoolValue = true;
      return parseLiteral("true");
    }
    Out.BoolValue = false;
    return parseLiteral("false");
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      const char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      const char Escape = Text[Pos++];
      switch (Escape) {
      case '"':
      case '\\':
      case '/':
        Out += Escape;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u': {
        // The writer only emits \u00XX control escapes; decode the low
        // byte and accept (skip) anything else without interpreting it.
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        const std::string Hex = Text.substr(Pos, 4);
        Pos += 4;
        Out += static_cast<char>(
            std::strtoul(Hex.c_str(), nullptr, 16) & 0xFFu);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    const std::size_t Start = Pos;
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if ((C >= '0' && C <= '9') || C == '-' || C == '+' || C == '.' ||
          C == 'e' || C == 'E') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos == Start)
      return fail("expected a value");
    Out.Type = JsonValue::Kind::Number;
    Out.StringValue = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    Out.NumberValue = std::strtod(Out.StringValue.c_str(), &End);
    if (End == Out.StringValue.c_str() || *End != '\0')
      return fail("malformed number '" + Out.StringValue + "'");
    return true;
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    Out.Type = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.Elements.push_back(std::move(Element));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    Out.Type = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected member name");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Value));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string &Text;
  std::string &Error;
  std::size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Cell extraction and comparison
//===----------------------------------------------------------------------===//

bool isIdentityField(const std::string &Key) {
  for (const char *Field : specIdentityFields())
    if (Key == Field)
      return true;
  return false;
}

std::string scalarToText(const JsonValue &Value) {
  switch (Value.Type) {
  case JsonValue::Kind::Bool:
    return Value.BoolValue ? "true" : "false";
  case JsonValue::Kind::Number:
  case JsonValue::Kind::String:
    return Value.StringValue;
  case JsonValue::Kind::Null:
    return "null";
  default:
    return "<composite>";
  }
}

/// A result cell flattened to its identity key, status, and a
/// writer-ordered list of (path, scalar) metrics.
struct Cell {
  std::string Key;
  std::string Status;
  std::vector<std::pair<std::string, const JsonValue *>> Metrics;
};

void flattenMetrics(const JsonValue &Object, const std::string &Prefix,
                    Cell &Out) {
  for (const auto &[Name, Value] : Object.Members) {
    if (Prefix.empty() && (isIdentityField(Name) || Name == "status"))
      continue;
    const std::string Path = Prefix.empty() ? Name : Prefix + "." + Name;
    switch (Value.Type) {
    case JsonValue::Kind::Object:
      flattenMetrics(Value, Path, Out);
      break;
    case JsonValue::Kind::Array:
      for (std::size_t I = 0; I < Value.Elements.size(); ++I)
        if (Value.Elements[I].Type == JsonValue::Kind::Object)
          flattenMetrics(Value.Elements[I],
                         Path + "[" + std::to_string(I) + "]", Out);
      break;
    default:
      Out.Metrics.emplace_back(Path, &Value);
    }
  }
}

Cell makeCell(const JsonValue &Result) {
  Cell Out;
  std::string Key;
  for (const char *Field : specIdentityFields()) {
    if (std::string(Field) == "mode_name")
      continue; // redundant with "mode"
    const JsonValue *Value = Result.find(Field);
    if (!Key.empty())
      Key += ' ';
    Key += Field;
    Key += '=';
    if (Value) {
      Key += scalarToText(*Value);
    } else if (std::string(Field) == "stream_pf" ||
               std::string(Field) == "pair_pf" ||
               std::string(Field) == "duel_pf" ||
               std::string(Field) == "tuned") {
      // Appended after the stream/pair/duel/tuned flags existed:
      // snapshots written before then omit them, and omission means
      // disabled — so old and new documents still pair cell for cell.
      Key += "false";
    } else {
      Key += '?';
    }
  }
  Out.Key = Key;
  if (const JsonValue *Status = Result.find("status"))
    Out.Status = scalarToText(*Status);
  flattenMetrics(Result, "", Out);
  return Out;
}

bool extractCells(const std::string &Json, const std::string &Name,
                  JsonValue &Doc, std::vector<Cell> &Out,
                  std::string &Error) {
  std::string ParseError;
  if (!JsonParser(Json, ParseError).parse(Doc)) {
    Error = Name + ": " + ParseError;
    return false;
  }
  const JsonValue *Schema = Doc.find("schema");
  if (!Schema || Schema->Type != JsonValue::Kind::String ||
      Schema->StringValue != "hds-matrix-results-v1") {
    Error = Name + ": not an hds-matrix-results-v1 document";
    return false;
  }
  const JsonValue *Results = Doc.find("results");
  if (!Results || Results->Type != JsonValue::Kind::Array) {
    Error = Name + ": missing results array";
    return false;
  }
  for (const JsonValue &Result : Results->Elements) {
    if (Result.Type != JsonValue::Kind::Object) {
      Error = Name + ": results array holds a non-object cell";
      return false;
    }
    Out.push_back(makeCell(Result));
    // Duplicate identities (the same spec listed twice) pair up
    // positionally via an occurrence suffix.
    std::size_t Occurrence = 0;
    for (std::size_t I = 0; I + 1 < Out.size(); ++I)
      if (Out[I].Key == Out.back().Key ||
          Out[I].Key.rfind(Out.back().Key + " #", 0) == 0)
        ++Occurrence;
    if (Occurrence != 0)
      Out.back().Key += " #" + std::to_string(Occurrence);
  }
  return true;
}

const Cell *findCell(const std::vector<Cell> &Cells, const std::string &Key) {
  for (const Cell &C : Cells)
    if (C.Key == Key)
      return &C;
  return nullptr;
}

std::string formatPct(double Pct) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", Pct);
  return Buf;
}

/// Relative change of B against A, in percent.  A zero baseline with a
/// nonzero reading counts as an unbounded change.
double relativeDeltaPct(double A, double B) {
  if (A == B)
    return 0.0;
  const double Base = std::fabs(A);
  if (Base == 0.0)
    return B > A ? 1.0e9 : -1.0e9;
  return 100.0 * (B - A) / Base;
}

/// Wall-clock paths live outside the determinism contract; the diff
/// handles them separately from real metrics (see DiffOptions).
bool isTimingPath(const std::string &Path) {
  return Path.rfind("timing.", 0) == 0;
}

void compareCells(const Cell &A, const Cell &B, const DiffOptions &Opts,
                  DiffReport &Report) {
  if (A.Status != B.Status) {
    Report.StatusChanges.push_back(
        {A.Key, "status " + A.Status + " -> " + B.Status});
    return; // metric sets differ by construction once status flips
  }

  for (const auto &[Path, ValueA] : A.Metrics) {
    const JsonValue *ValueB = nullptr;
    for (const auto &[PathB, Candidate] : B.Metrics)
      if (PathB == Path) {
        ValueB = Candidate;
        break;
      }
    if (isTimingPath(Path)) {
      // Only the rate is gated, only when the caller asked, and only
      // when both sides measured it.
      if (Opts.WallThresholdPct < 0.0 || Path != "timing.accesses_per_sec" ||
          !ValueB || ValueA->Type != JsonValue::Kind::Number ||
          ValueB->Type != JsonValue::Kind::Number)
        continue;
      const double Pct =
          relativeDeltaPct(ValueA->NumberValue, ValueB->NumberValue);
      if (std::fabs(Pct) <= Opts.WallThresholdPct)
        continue;
      const DiffLine Line{A.Key, Path + " " + ValueA->StringValue + " -> " +
                                     ValueB->StringValue + " (" +
                                     formatPct(Pct) + ")"};
      (Pct < 0.0 ? Report.Regressions : Report.Improvements).push_back(Line);
      continue;
    }
    if (!ValueB) {
      Report.MetricChanges.push_back({A.Key, Path + " missing in second file"});
      continue;
    }
    if (ValueA->Type == JsonValue::Kind::Number &&
        ValueB->Type == JsonValue::Kind::Number) {
      const double Pct = relativeDeltaPct(ValueA->NumberValue,
                                          ValueB->NumberValue);
      if (std::fabs(Pct) <= Opts.ThresholdPct)
        continue;
      const DiffLine Line{A.Key, Path + " " + ValueA->StringValue + " -> " +
                                     ValueB->StringValue + " (" +
                                     formatPct(Pct) + ")"};
      if (Path == "cycles")
        (Pct > 0.0 ? Report.Regressions : Report.Improvements).push_back(Line);
      else
        Report.MetricChanges.push_back(Line);
      continue;
    }
    const std::string TextA = scalarToText(*ValueA);
    const std::string TextB = scalarToText(*ValueB);
    if (TextA != TextB)
      Report.MetricChanges.push_back(
          {A.Key, Path + " " + TextA + " -> " + TextB});
  }

  for (const auto &[Path, ValueB] : B.Metrics) {
    (void)ValueB;
    if (isTimingPath(Path))
      continue;
    bool InA = false;
    for (const auto &[PathA, ValueA] : A.Metrics) {
      (void)ValueA;
      if (PathA == Path) {
        InA = true;
        break;
      }
    }
    if (!InA)
      Report.MetricChanges.push_back({A.Key, Path + " missing in first file"});
  }
}

void appendSection(std::string &Out, const char *Title,
                   const std::vector<DiffLine> &Lines) {
  if (Lines.empty())
    return;
  Out += Title;
  Out += ":\n";
  for (const DiffLine &Line : Lines) {
    Out += "  [";
    Out += Line.Cell;
    Out += "] ";
    Out += Line.Detail;
    Out += '\n';
  }
}

} // namespace

std::string DiffReport::render(const std::string &NameA,
                               const std::string &NameB) const {
  std::string Out;
  Out += "diff " + NameA + " -> " + NameB + ": " +
         std::to_string(CellsCompared) + " cell(s) compared\n";
  appendSection(Out, "regressions", Regressions);
  appendSection(Out, "improvements", Improvements);
  appendSection(Out, "metric changes", MetricChanges);
  appendSection(Out, "status changes", StatusChanges);
  if (!OnlyInA.empty()) {
    Out += "only in " + NameA + ":\n";
    for (const std::string &Key : OnlyInA)
      Out += "  [" + Key + "]\n";
  }
  if (!OnlyInB.empty()) {
    Out += "only in " + NameB + ":\n";
    for (const std::string &Key : OnlyInB)
      Out += "  [" + Key + "]\n";
  }
  Out += regressed() ? "verdict: DIFFERENT\n" : "verdict: OK\n";
  return Out;
}

bool hds::engine::diffResults(const std::string &JsonA,
                              const std::string &JsonB,
                              const DiffOptions &Opts, DiffReport &Report,
                              std::string &Error) {
  // The parsed documents own every JsonValue the cells point into.
  JsonValue DocA, DocB;
  std::vector<Cell> CellsA, CellsB;
  if (!extractCells(JsonA, "first file", DocA, CellsA, Error) ||
      !extractCells(JsonB, "second file", DocB, CellsB, Error))
    return false;

  for (const Cell &A : CellsA) {
    const Cell *B = findCell(CellsB, A.Key);
    if (!B) {
      Report.OnlyInA.push_back(A.Key);
      continue;
    }
    ++Report.CellsCompared;
    compareCells(A, *B, Opts, Report);
  }
  for (const Cell &B : CellsB)
    if (!findCell(CellsA, B.Key))
      Report.OnlyInB.push_back(B.Key);
  return true;
}
