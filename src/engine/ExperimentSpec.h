//===- engine/ExperimentSpec.h - One cell of the run matrix ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative description of one independent simulation — a
/// (workload, RunMode, configuration, seed, scale) cell of the experiment
/// matrix — plus the builders that enumerate the default matrix behind
/// the paper's Figures 11/12 and narrow it with key=value filters.
///
/// Specs are plain data: two equal specs describe byte-identical
/// simulations, which is what lets the engine shard a matrix across
/// threads and still merge results deterministically (see
/// docs/engine.md).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXPERIMENTSPEC_H
#define HDS_ENGINE_EXPERIMENTSPEC_H

#include "core/OptimizerConfig.h"
#include "prefetch/Selection.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// One independent simulation.  Every field is value data (no callbacks,
/// no environment reads), so a spec can be serialized into the results
/// JSON and re-run bit-for-bit later.
struct ExperimentSpec {
  /// Workload name as accepted by workloads::createWorkload.
  std::string Workload = "vpr";
  core::RunMode Mode = core::RunMode::DynamicPrefetch;
  /// Multiplier on the workload's default iteration count (ignored when
  /// Iterations is set explicitly).
  double Scale = 1.0;
  /// Explicit iteration count; 0 means "workload default × Scale".
  uint64_t Iterations = 0;
  /// Layout seed: a nonzero seed shifts the simulated heap base by a
  /// seed-derived pad before workload setup, scattering allocations onto
  /// different cache blocks/sets.  Varying the seed explores layout
  /// sensitivity (the alignment effects DESIGN.md discusses); 0 is the
  /// canonical layout used by the paper figures.
  uint64_t Seed = 0;
  /// Prefix-match head length (Section 4.3; default 2).
  uint32_t HeadLength = 2;
  /// Orthogonal hardware prefetcher zoo (src/prefetch): any subset may
  /// ride along in any mode.  Duel wraps the enabled subset (or, when
  /// fewer than two others are enabled, all four) in the per-region
  /// dueling selector.  One selection value replaces the old per-kind
  /// booleans; the legacy stride/markov/... identity fields in the
  /// results JSON are derived from it unchanged.
  prefetch::PrefetcherSelection Prefetchers;
  /// Static-scheme model: pin the first successful optimization.
  bool Pin = false;
  /// Adaptive hibernation extension (§5.2).
  bool Adaptive = false;
  /// Closed-loop degree/distance tuning (prefetch/TuningPolicy.h): the
  /// "tuned" spec axis.  Orthogonal to Adaptive (hibernation).
  bool Tuned = false;

  /// Materializes the OptimizerConfig this spec describes.
  core::OptimizerConfig materializeConfig() const;

  /// Stable display label: "mcf/dynpref", "mcf/dynpref@3+stride", ...
  std::string label() const;

  bool operator==(const ExperimentSpec &Other) const = default;
};

/// The default matrix at \p Scale: every workload (paper figure order) ×
/// every RunMode — the cells behind Figures 11 and 12 plus their
/// Original baselines — followed by one Original-mode cell per workload
/// per hardware prefetcher (stride, markov, stream, pair, duel), the
/// Figure-12-style hardware comparison bars, followed by the closed-loop
/// tuning cells (dynpref plus the tunable zoo engines, Tuned set).
std::vector<ExperimentSpec> defaultMatrix(double Scale = 1.0);

/// Narrows \p Specs in place with one "key=value" filter.  Supported
/// keys: workload (name), mode (runModeToken vocabulary), seed
/// (decimal), prefetcher (none or a kind token — cells whose only
/// enabled prefetcher is the named one), tuning (adaptive|fixed).
/// Returns false — leaving \p Specs untouched and setting \p Error when
/// non-null — for an unknown key or unparseable value.
bool applyFilter(std::vector<ExperimentSpec> &Specs,
                 const std::string &Filter, std::string *Error = nullptr);

/// The filter vocabulary lines of a tool usage text, generated from the
/// shared token definitions (core::allRunModes, Prefetcher::kindToken,
/// the tuning axis) so CLI help never drifts from the parsers.
std::string filterHelp();

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXPERIMENTSPEC_H
