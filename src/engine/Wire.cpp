//===- engine/Wire.cpp - Binary wire format for distributed runs ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Wire.h"

#include "core/RunStats.h"
#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"
#include "obs/CycleAccount.h"
#include "obs/Metrics.h"
#include "obs/PrefetchStats.h"

#include <array>
#include <bit>
#include <cmath>
#include <type_traits>

using namespace hds;
using namespace hds::engine;
using namespace hds::engine::wire;

//===----------------------------------------------------------------------===//
// CRC32 and frame envelope
//===----------------------------------------------------------------------===//

uint32_t wire::crc32(const uint8_t *Data, std::size_t Size) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1u) != 0 ? 0xEDB88320u ^ (C >> 1) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = 0xFFFFFFFFu;
  for (std::size_t I = 0; I < Size; ++I)
    Crc = Table[(Crc ^ Data[I]) & 0xFFu] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

namespace {

void appendU32(std::vector<uint8_t> &Out, uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<uint8_t>((Value >> Shift) & 0xFFu));
}

uint32_t readU32At(const uint8_t *Data) {
  uint32_t Value = 0;
  for (int I = 0; I < 4; ++I)
    Value |= static_cast<uint32_t>(Data[I]) << (8 * I);
  return Value;
}

bool knownFrameType(uint8_t Type) {
  return Type >= static_cast<uint8_t>(FrameType::Hello) &&
         Type <= static_cast<uint8_t>(FrameType::CheckpointHeader);
}

} // namespace

std::vector<uint8_t> wire::encodeFrame(FrameType Type,
                                       const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out;
  Out.reserve(HeaderBytes + Payload.size() + TrailerBytes);
  Out.push_back(Magic0);
  Out.push_back(Magic1);
  Out.push_back(ProtocolVersion);
  Out.push_back(static_cast<uint8_t>(Type));
  appendU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  appendU32(Out, crc32(Payload.data(), Payload.size()));
  return Out;
}

DecodeStatus wire::decodeFrame(const uint8_t *Data, std::size_t Size,
                               Frame &Out, std::size_t &Consumed,
                               std::string &Error) {
  // Reject garbage as early as the bytes allow, so a stream that is not
  // ours at all fails fast instead of waiting for more input.
  if (Size >= 1 && Data[0] != Magic0) {
    Error = "bad frame magic";
    return DecodeStatus::Malformed;
  }
  if (Size >= 2 && Data[1] != Magic1) {
    Error = "bad frame magic";
    return DecodeStatus::Malformed;
  }
  if (Size >= 3 && Data[2] != ProtocolVersion) {
    Error = "protocol version skew: got " + std::to_string(Data[2]) +
            ", expected " + std::to_string(ProtocolVersion);
    return DecodeStatus::Malformed;
  }
  if (Size >= 4 && !knownFrameType(Data[3])) {
    Error = "unknown frame type " + std::to_string(Data[3]);
    return DecodeStatus::Malformed;
  }
  if (Size < HeaderBytes)
    return DecodeStatus::NeedMore;

  const uint32_t PayloadSize = readU32At(Data + 4);
  if (PayloadSize > MaxPayloadBytes) {
    Error = "oversized payload (" + std::to_string(PayloadSize) +
            " bytes, limit " + std::to_string(MaxPayloadBytes) + ")";
    return DecodeStatus::Malformed;
  }
  const std::size_t Total = HeaderBytes + PayloadSize + TrailerBytes;
  if (Size < Total)
    return DecodeStatus::NeedMore;

  const uint8_t *Payload = Data + HeaderBytes;
  const uint32_t Expected = readU32At(Payload + PayloadSize);
  const uint32_t Actual = crc32(Payload, PayloadSize);
  if (Expected != Actual) {
    Error = "payload CRC mismatch";
    return DecodeStatus::Malformed;
  }

  Out.Type = static_cast<FrameType>(Data[3]);
  Out.Payload.assign(Payload, Payload + PayloadSize);
  Consumed = Total;
  return DecodeStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Payload primitives
//===----------------------------------------------------------------------===//

void wire::appendU64(std::vector<uint8_t> &Out, uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<uint8_t>((Value >> Shift) & 0xFFu));
}

void wire::appendString(std::vector<uint8_t> &Out, const std::string &Value) {
  appendU32(Out, static_cast<uint32_t>(Value.size()));
  Out.insert(Out.end(), Value.begin(), Value.end());
}

bool Reader::readU8(uint8_t &Value) {
  if (Size - Pos < 1)
    return false;
  Value = Data[Pos++];
  return true;
}

bool Reader::readU64(uint64_t &Value) {
  if (Size - Pos < 8)
    return false;
  Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Data[Pos + static_cast<std::size_t>(I)])
             << (8 * I);
  Pos += 8;
  return true;
}

bool Reader::readString(std::string &Value) {
  if (Size - Pos < 4)
    return false;
  const uint32_t Len = readU32At(Data + Pos);
  if (Len > Size - Pos - 4)
    return false;
  Pos += 4;
  Value.assign(reinterpret_cast<const char *>(Data + Pos), Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// ExperimentSpec fields
//===----------------------------------------------------------------------===//

namespace {

// Tag vocabularies.  0 terminates a tagged section; unknown or duplicate
// tags are decode errors (skew shows up at the version byte, not here).
// hds-schema-enum
enum SpecTag : uint8_t {
  SpecEnd = 0,
  SpecWorkload = 1,
  SpecMode = 2,
  SpecScale = 3,
  SpecIterations = 4,
  SpecSeed = 5,
  SpecHeadLength = 6,
  SpecFlags = 7,
};

// hds-schema-enum
enum ResultTag : uint8_t {
  ResultEnd = 0,
  ResultSpec = 1,
  ResultState = 2,
  ResultError = 3,
  ResultIterations = 4,
  ResultCycles = 5,
  ResultRunStats = 6,
  ResultPhases = 7,
  ResultHierarchy = 8,
  ResultL1 = 9,
  ResultL2 = 10,
  ResultBreakdown = 11,
  ResultStreams = 12,
  ResultWallTiming = 13,
  ResultPrefetchers = 14,
};

// hds-schema-enum
enum HelloTag : uint8_t {
  HelloEnd = 0,
  HelloCores = 1,
  HelloMemoryBudgetMB = 2,
};

constexpr uint64_t FlagStride = 1u << 0;
constexpr uint64_t FlagMarkov = 1u << 1;
constexpr uint64_t FlagPin = 1u << 2;
constexpr uint64_t FlagAdaptive = 1u << 3;
constexpr uint64_t FlagStream = 1u << 4;
constexpr uint64_t FlagPair = 1u << 5;
constexpr uint64_t FlagDuel = 1u << 6;
constexpr uint64_t FlagTuned = 1u << 7;

void appendTagU64(std::vector<uint8_t> &Out, uint8_t Tag, uint64_t Value) {
  Out.push_back(Tag);
  appendU64(Out, Value);
}

void encodeSpecFields(std::vector<uint8_t> &Out, const ExperimentSpec &Spec) {
  Out.push_back(SpecWorkload);
  appendString(Out, Spec.Workload);
  appendTagU64(Out, SpecMode, static_cast<uint64_t>(Spec.Mode));
  appendTagU64(Out, SpecScale, std::bit_cast<uint64_t>(Spec.Scale));
  appendTagU64(Out, SpecIterations, Spec.Iterations);
  appendTagU64(Out, SpecSeed, Spec.Seed);
  appendTagU64(Out, SpecHeadLength, Spec.HeadLength);
  uint64_t Flags = 0;
  if (Spec.Prefetchers.has(prefetch::Prefetcher::Stride))
    Flags |= FlagStride;
  if (Spec.Prefetchers.has(prefetch::Prefetcher::Markov))
    Flags |= FlagMarkov;
  if (Spec.Pin)
    Flags |= FlagPin;
  if (Spec.Adaptive)
    Flags |= FlagAdaptive;
  if (Spec.Prefetchers.has(prefetch::Prefetcher::Stream))
    Flags |= FlagStream;
  if (Spec.Prefetchers.has(prefetch::Prefetcher::PairTable))
    Flags |= FlagPair;
  if (Spec.Prefetchers.has(prefetch::Prefetcher::Duel))
    Flags |= FlagDuel;
  if (Spec.Tuned)
    Flags |= FlagTuned;
  appendTagU64(Out, SpecFlags, Flags);
  Out.push_back(SpecEnd);
}

bool decodeSpecFields(Reader &R, ExperimentSpec &Spec, std::string &Error) {
  uint64_t Seen = 0;
  for (;;) {
    uint8_t Tag = 0;
    if (!R.readU8(Tag)) {
      Error = "spec truncated before end tag";
      return false;
    }
    if (Tag == SpecEnd)
      break;
    if (Tag > SpecFlags) {
      Error = "unknown spec field tag " + std::to_string(Tag);
      return false;
    }
    if ((Seen & (uint64_t{1} << Tag)) != 0) {
      Error = "duplicate spec field tag " + std::to_string(Tag);
      return false;
    }
    Seen |= uint64_t{1} << Tag;

    uint64_t Value = 0;
    bool Ok = true;
    switch (Tag) {
    case SpecWorkload:
      Ok = R.readString(Spec.Workload);
      break;
    case SpecMode:
      Ok = R.readU64(Value);
      if (Ok && Value > static_cast<uint64_t>(core::RunMode::DynamicPrefetch)) {
        Error = "invalid run mode " + std::to_string(Value);
        return false;
      }
      Spec.Mode = static_cast<core::RunMode>(Value);
      break;
    case SpecScale:
      Ok = R.readU64(Value);
      Spec.Scale = std::bit_cast<double>(Value);
      if (Ok && !(std::isfinite(Spec.Scale) && Spec.Scale > 0.0)) {
        Error = "invalid scale";
        return false;
      }
      break;
    case SpecIterations:
      Ok = R.readU64(Spec.Iterations);
      break;
    case SpecSeed:
      Ok = R.readU64(Spec.Seed);
      break;
    case SpecHeadLength:
      Ok = R.readU64(Value);
      Spec.HeadLength = static_cast<uint32_t>(Value);
      break;
    case SpecFlags:
      Ok = R.readU64(Value);
      Spec.Prefetchers.set(prefetch::Prefetcher::Stride,
                           (Value & FlagStride) != 0);
      Spec.Prefetchers.set(prefetch::Prefetcher::Markov,
                           (Value & FlagMarkov) != 0);
      Spec.Pin = (Value & FlagPin) != 0;
      Spec.Adaptive = (Value & FlagAdaptive) != 0;
      Spec.Prefetchers.set(prefetch::Prefetcher::Stream,
                           (Value & FlagStream) != 0);
      Spec.Prefetchers.set(prefetch::Prefetcher::PairTable,
                           (Value & FlagPair) != 0);
      Spec.Prefetchers.set(prefetch::Prefetcher::Duel,
                           (Value & FlagDuel) != 0);
      Spec.Tuned = (Value & FlagTuned) != 0;
      break;
    default:
      Ok = false;
      break;
    }
    if (!Ok) {
      Error = "spec field " + std::to_string(Tag) + " truncated";
      return false;
    }
  }
  const uint64_t AllSpecTags = (uint64_t{1} << SpecWorkload) |
                               (uint64_t{1} << SpecMode) |
                               (uint64_t{1} << SpecScale) |
                               (uint64_t{1} << SpecIterations) |
                               (uint64_t{1} << SpecSeed) |
                               (uint64_t{1} << SpecHeadLength) |
                               (uint64_t{1} << SpecFlags);
  if (Seen != AllSpecTags) {
    Error = "spec is missing mandatory fields";
    return false;
  }
  return true;
}

/// Encodes a counter block: count, then each counter in the stable
/// visit*Metrics order (the MetricDef is ignored here — ids travel as
/// position, not as bytes).
template <typename StatsT, typename VisitorT>
void encodeCounters(std::vector<uint8_t> &Out, const StatsT &Stats,
                    VisitorT &&Visitor) {
  uint64_t Count = 0;
  Visitor(Stats,
          [&Count](const obs::MetricDef &, const auto &) { ++Count; });
  appendU64(Out, Count);
  Visitor(Stats, [&Out](const obs::MetricDef &, const auto &Field) {
    appendU64(Out, static_cast<uint64_t>(Field));
  });
}

template <typename StatsT, typename VisitorT>
bool decodeCounters(Reader &R, StatsT &Stats, VisitorT &&Visitor,
                    std::string &Error) {
  uint64_t Expected = 0;
  Visitor(Stats,
          [&Expected](const obs::MetricDef &, auto &) { ++Expected; });
  uint64_t Count = 0;
  if (!R.readU64(Count) || Count != Expected) {
    Error = "counter block has wrong field count";
    return false;
  }
  bool Ok = true;
  Visitor(Stats, [&R, &Ok](const obs::MetricDef &, auto &Field) {
    uint64_t Value = 0;
    Ok = Ok && R.readU64(Value);
    Field = static_cast<std::remove_reference_t<decltype(Field)>>(Value);
  });
  if (!Ok)
    Error = "counter block truncated";
  return Ok;
}

// Wrap the visit functions in generic lambdas so encode (const) and
// decode (mutable) instantiate the right overloads.
constexpr auto VisitRunStats = [](auto &&S, auto &&F) {
  core::visitRunStatsMetrics(S, F);
};
constexpr auto VisitCycleStats = [](auto &&S, auto &&F) {
  core::visitCycleStatsMetrics(S, F);
};
constexpr auto VisitCacheStats = [](auto &&S, auto &&F) {
  memsim::visitCacheStatsMetrics(S, F);
};
constexpr auto VisitHierarchyStats = [](auto &&S, auto &&F) {
  memsim::visitHierarchyStatsMetrics(S, F);
};
constexpr auto VisitBreakdown = [](auto &&S, auto &&F) {
  obs::visitCycleBreakdownMetrics(S, F);
};
constexpr auto VisitStream = [](auto &&S, auto &&F) {
  obs::visitStreamPrefetchStatsMetrics(S, F);
};
constexpr auto VisitPrefetcher = [](auto &&S, auto &&F) {
  obs::visitPrefetcherStatsMetrics(S, F);
};
constexpr auto VisitTiming = [](auto &&S, auto &&F) {
  engine::visitResultTimingMetrics(S, F);
};

} // namespace

//===----------------------------------------------------------------------===//
// Assign / Result payloads
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wire::encodeAssign(uint64_t Index,
                                        const ExperimentSpec &Spec) {
  std::vector<uint8_t> Out;
  appendU64(Out, Index);
  encodeSpecFields(Out, Spec);
  return Out;
}

bool wire::decodeAssign(const std::vector<uint8_t> &Payload, uint64_t &Index,
                        ExperimentSpec &Spec, std::string &Error) {
  Reader R(Payload);
  if (!R.readU64(Index)) {
    Error = "assign payload truncated before index";
    return false;
  }
  if (!decodeSpecFields(R, Spec, Error))
    return false;
  if (!R.atEnd()) {
    Error = "trailing bytes after spec";
    return false;
  }
  return true;
}

std::vector<uint8_t> wire::encodeResult(uint64_t Index,
                                        const RunResult &Result) {
  std::vector<uint8_t> Out;
  appendU64(Out, Index);

  Out.push_back(ResultSpec);
  encodeSpecFields(Out, Result.Spec);
  appendTagU64(Out, ResultState, static_cast<uint64_t>(Result.State));
  Out.push_back(ResultError);
  appendString(Out, Result.Error);
  appendTagU64(Out, ResultIterations, Result.Iterations);
  appendTagU64(Out, ResultCycles, Result.Cycles);

  Out.push_back(ResultRunStats);
  encodeCounters(Out, Result.Stats, VisitRunStats);

  Out.push_back(ResultPhases);
  appendU64(Out, Result.Stats.Cycles.size());
  for (const core::CycleStats &Phase : Result.Stats.Cycles)
    encodeCounters(Out, Phase, VisitCycleStats);

  Out.push_back(ResultHierarchy);
  encodeCounters(Out, Result.Memory, VisitHierarchyStats);
  Out.push_back(ResultL1);
  encodeCounters(Out, Result.L1, VisitCacheStats);
  Out.push_back(ResultL2);
  encodeCounters(Out, Result.L2, VisitCacheStats);

  Out.push_back(ResultBreakdown);
  encodeCounters(Out, Result.Breakdown, VisitBreakdown);

  Out.push_back(ResultStreams);
  appendU64(Out, Result.Streams.size());
  for (const obs::StreamPrefetchStats &Stream : Result.Streams)
    encodeCounters(Out, Stream, VisitStream);

  Out.push_back(ResultWallTiming);
  encodeCounters(Out, Result.Timing, VisitTiming);

  Out.push_back(ResultPrefetchers);
  appendU64(Out, Result.Prefetchers.size());
  for (const obs::PrefetcherStats &Pf : Result.Prefetchers)
    encodeCounters(Out, Pf, VisitPrefetcher);

  Out.push_back(ResultEnd);
  return Out;
}

void wire::encodeSpec(std::vector<uint8_t> &Out, const ExperimentSpec &Spec) {
  encodeSpecFields(Out, Spec);
}

bool wire::decodeSpec(Reader &R, ExperimentSpec &Spec, std::string &Error) {
  return decodeSpecFields(R, Spec, Error);
}

std::vector<uint8_t> wire::encodeHello(const HelloInfo &Info) {
  std::vector<uint8_t> Out;
  appendTagU64(Out, HelloCores, Info.Cores);
  appendTagU64(Out, HelloMemoryBudgetMB, Info.MemoryBudgetMB);
  Out.push_back(HelloEnd);
  return Out;
}

bool wire::decodeHello(const std::vector<uint8_t> &Payload, HelloInfo &Info,
                       std::string &Error) {
  Reader R(Payload);
  uint64_t Seen = 0;
  for (;;) {
    uint8_t Tag = 0;
    if (!R.readU8(Tag)) {
      Error = "hello truncated before end tag";
      return false;
    }
    if (Tag == HelloEnd)
      break;
    if (Tag > HelloMemoryBudgetMB) {
      Error = "unknown hello field tag " + std::to_string(Tag);
      return false;
    }
    if ((Seen & (uint64_t{1} << Tag)) != 0) {
      Error = "duplicate hello field tag " + std::to_string(Tag);
      return false;
    }
    Seen |= uint64_t{1} << Tag;
    uint64_t Value = 0;
    if (!R.readU64(Value)) {
      Error = "hello field " + std::to_string(Tag) + " truncated";
      return false;
    }
    if (Tag == HelloCores)
      Info.Cores = Value;
    else
      Info.MemoryBudgetMB = Value;
  }
  const uint64_t AllHelloTags =
      (uint64_t{1} << HelloCores) | (uint64_t{1} << HelloMemoryBudgetMB);
  if (Seen != AllHelloTags) {
    Error = "hello is missing mandatory fields";
    return false;
  }
  if (!R.atEnd()) {
    Error = "trailing bytes after hello";
    return false;
  }
  return true;
}

std::vector<uint8_t> wire::encodeChallenge(uint64_t NonceHi,
                                           uint64_t NonceLo) {
  std::vector<uint8_t> Out;
  appendU64(Out, NonceHi);
  appendU64(Out, NonceLo);
  return Out;
}

bool wire::decodeChallenge(const std::vector<uint8_t> &Payload,
                           uint64_t &NonceHi, uint64_t &NonceLo,
                           std::string &Error) {
  Reader R(Payload);
  if (!R.readU64(NonceHi) || !R.readU64(NonceLo)) {
    Error = "challenge payload truncated";
    return false;
  }
  if (!R.atEnd()) {
    Error = "trailing bytes after challenge";
    return false;
  }
  return true;
}

std::vector<uint8_t> wire::encodeAuthProof(uint64_t Digest) {
  std::vector<uint8_t> Out;
  appendU64(Out, Digest);
  return Out;
}

bool wire::decodeAuthProof(const std::vector<uint8_t> &Payload,
                           uint64_t &Digest, std::string &Error) {
  Reader R(Payload);
  if (!R.readU64(Digest)) {
    Error = "auth proof payload truncated";
    return false;
  }
  if (!R.atEnd()) {
    Error = "trailing bytes after auth proof";
    return false;
  }
  return true;
}

bool wire::decodeResult(const std::vector<uint8_t> &Payload, uint64_t &Index,
                        RunResult &Result, std::string &Error) {
  Reader R(Payload);
  if (!R.readU64(Index)) {
    Error = "result payload truncated before index";
    return false;
  }

  uint64_t Seen = 0;
  for (;;) {
    uint8_t Tag = 0;
    if (!R.readU8(Tag)) {
      Error = "result truncated before end tag";
      return false;
    }
    if (Tag == ResultEnd)
      break;
    if (Tag > ResultPrefetchers) {
      Error = "unknown result field tag " + std::to_string(Tag);
      return false;
    }
    if ((Seen & (uint64_t{1} << Tag)) != 0) {
      Error = "duplicate result field tag " + std::to_string(Tag);
      return false;
    }
    Seen |= uint64_t{1} << Tag;

    uint64_t Value = 0;
    bool Ok = true;
    switch (Tag) {
    case ResultSpec:
      if (!decodeSpecFields(R, Result.Spec, Error))
        return false;
      break;
    case ResultState:
      Ok = R.readU64(Value);
      if (Ok && Value > static_cast<uint64_t>(RunResult::Status::Ok)) {
        Error = "invalid result status " + std::to_string(Value);
        return false;
      }
      Result.State = static_cast<RunResult::Status>(Value);
      break;
    case ResultError:
      Ok = R.readString(Result.Error);
      break;
    case ResultIterations:
      Ok = R.readU64(Result.Iterations);
      break;
    case ResultCycles:
      Ok = R.readU64(Result.Cycles);
      break;
    case ResultRunStats:
      if (!decodeCounters(R, Result.Stats, VisitRunStats, Error))
        return false;
      break;
    case ResultPhases: {
      uint64_t Count = 0;
      Ok = R.readU64(Count);
      // Each phase needs at least its counter-count word; anything larger
      // than the remaining bytes is a corrupt length, not a real vector.
      if (Ok && Count > R.remaining() / 8) {
        Error = "phase count exceeds payload";
        return false;
      }
      if (Ok) {
        Result.Stats.Cycles.assign(static_cast<std::size_t>(Count),
                                   core::CycleStats{});
        for (core::CycleStats &Phase : Result.Stats.Cycles)
          if (!decodeCounters(R, Phase, VisitCycleStats, Error))
            return false;
      }
      break;
    }
    case ResultHierarchy:
      if (!decodeCounters(R, Result.Memory, VisitHierarchyStats, Error))
        return false;
      break;
    case ResultL1:
      if (!decodeCounters(R, Result.L1, VisitCacheStats, Error))
        return false;
      break;
    case ResultL2:
      if (!decodeCounters(R, Result.L2, VisitCacheStats, Error))
        return false;
      break;
    case ResultBreakdown:
      if (!decodeCounters(R, Result.Breakdown, VisitBreakdown, Error))
        return false;
      break;
    case ResultStreams: {
      uint64_t Count = 0;
      Ok = R.readU64(Count);
      // Each stream needs at least its counter-count word; anything larger
      // than the remaining bytes is a corrupt length, not a real vector.
      if (Ok && Count > R.remaining() / 8) {
        Error = "stream count exceeds payload";
        return false;
      }
      if (Ok) {
        Result.Streams.assign(static_cast<std::size_t>(Count),
                              obs::StreamPrefetchStats{});
        for (obs::StreamPrefetchStats &Stream : Result.Streams)
          if (!decodeCounters(R, Stream, VisitStream, Error))
            return false;
      }
      break;
    }
    case ResultWallTiming:
      if (!decodeCounters(R, Result.Timing, VisitTiming, Error))
        return false;
      break;
    case ResultPrefetchers: {
      uint64_t Count = 0;
      Ok = R.readU64(Count);
      // Each row needs at least its counter-count word; anything larger
      // than the remaining bytes is a corrupt length, not a real vector.
      if (Ok && Count > R.remaining() / 8) {
        Error = "prefetcher count exceeds payload";
        return false;
      }
      if (Ok) {
        Result.Prefetchers.assign(static_cast<std::size_t>(Count),
                                  obs::PrefetcherStats{});
        for (obs::PrefetcherStats &Pf : Result.Prefetchers)
          if (!decodeCounters(R, Pf, VisitPrefetcher, Error))
            return false;
      }
      break;
    }
    default:
      Ok = false;
      break;
    }
    if (!Ok) {
      Error = "result field " + std::to_string(Tag) + " truncated";
      return false;
    }
  }

  const uint64_t AllResultTags =
      (uint64_t{1} << ResultSpec) | (uint64_t{1} << ResultState) |
      (uint64_t{1} << ResultError) | (uint64_t{1} << ResultIterations) |
      (uint64_t{1} << ResultCycles) | (uint64_t{1} << ResultRunStats) |
      (uint64_t{1} << ResultPhases) | (uint64_t{1} << ResultHierarchy) |
      (uint64_t{1} << ResultL1) | (uint64_t{1} << ResultL2) |
      (uint64_t{1} << ResultBreakdown) | (uint64_t{1} << ResultStreams) |
      (uint64_t{1} << ResultWallTiming) | (uint64_t{1} << ResultPrefetchers);
  if (Seen != AllResultTags) {
    Error = "result is missing mandatory fields";
    return false;
  }
  if (!R.atEnd()) {
    Error = "trailing bytes after result";
    return false;
  }
  return true;
}
