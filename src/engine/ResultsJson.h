//===- engine/ResultsJson.h - Machine-readable results ---------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes merged matrix results as JSON (schema
/// "hds-matrix-results-v1", documented field by field in
/// docs/engine.md).  Everything outside the optional "timing" object is
/// a pure function of the specs, so the same matrix serializes
/// byte-identically no matter how many threads ran it — the property the
/// BENCH_*.json trajectory files and the determinism ctest rely on.
///
/// Wall-clock values never originate here (src/ is clock-free by rule
/// D1); callers that want a "timing" object measure time themselves and
/// pass it in.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_RESULTSJSON_H
#define HDS_ENGINE_RESULTSJSON_H

#include "engine/ExperimentRunner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// Optional non-deterministic extras appended as a top-level "timing"
/// object.  Excluded from the determinism contract by construction: when
/// no part is enabled the object is omitted entirely.
struct TimingInfo {
  /// Emit wall-clock fields (measured by the caller — src/ has no clock).
  bool IncludeWall = false;
  uint64_t WallMillis = 0;
  unsigned Jobs = 0;
  /// Emit each ok result's RunResult::Timing as a per-result "timing"
  /// object (the BENCH_matrix.json shape written by tools/hds_bench).
  /// Off by default so plain matrix output stays byte-deterministic.
  bool IncludePerResult = false;
  /// Raw JSON value embedded verbatim as "lint" (the lint_timing.json
  /// written by scripts/lint.sh).  Empty = omitted.
  std::string LintJson;
};

/// Serializes \p Results (spec order) to a JSON document.  Overhead
/// percentages are computed against the matching Original-mode baseline
/// in the same result set (same workload/scale/seed/iterations, no
/// hardware prefetchers) when one is present.
std::string resultsToJson(const std::vector<RunResult> &Results,
                          const TimingInfo &Timing = TimingInfo());

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_RESULTSJSON_H
