//===- engine/ExecutorFactory.h - Executor construction --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one way to obtain an Executor (engine/Executor.h).  A single
/// FleetConfig value names everything any execution mode can want —
/// local thread count, listen address, worker forking, timeouts, the
/// shared auth token, heartbeat cadence, and the checkpoint journal —
/// and the two factories interpret the slice they care about:
///
///   * makeLocal() — in-process JobScheduler pool; uses Jobs and
///     CancelRequested, ignores the rest.  Never fails.
///   * makeFleet() — the socket-served fleet service (src/fleet/):
///     binds ListenAddr, forks ForkedWorkers local workers, admits
///     external ones through the authenticated hello, and (when
///     CheckpointPath is set) journals completed cells for
///     crash/resume.  Defined in the hds_fleet library — callers of
///     makeFleet() must link it.
///
/// The concrete executor types are implementation details and are not
/// part of the public API; the old LocalExecutor/SocketExecutor classes
/// were removed when this factory was introduced.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXECUTORFACTORY_H
#define HDS_ENGINE_EXECUTORFACTORY_H

#include "engine/Executor.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace hds {
namespace fleet {
class FleetEvents;
} // namespace fleet

namespace engine {

/// Everything an executor can be asked for, as one value type.  Fields
/// irrelevant to a given factory are ignored, so one config can be
/// threaded through a CLI and handed to whichever factory the flags
/// select.
struct FleetConfig {
  //===--- local execution --------------------------------------------===//
  /// Worker threads for makeLocal (clamped to at least 1).
  unsigned Jobs = 1;
  /// When non-null and set: makeLocal cancels jobs that have not started
  /// yet; makeFleet drains — stops assigning, finishes (and journals)
  /// in-flight cells, reports the rest Cancelled.
  const std::atomic<bool> *CancelRequested = nullptr;

  //===--- fleet service ----------------------------------------------===//
  /// "host:port" (port 0 = ephemeral) or "unix:/path".  Non-loopback
  /// requires AllowNonLoopback plus a Token (docs/fleet.md).
  std::string ListenAddr = "127.0.0.1:0";
  /// Local worker processes forked by the executor; 0 = external
  /// workers only (start them with `hds_fleet worker <addr>`).
  unsigned ForkedWorkers = 0;
  /// Per-job result deadline before the coordinator re-queues.
  uint32_t JobTimeoutMs = 120000;
  /// Give-up deadline with unresolved jobs and zero workers.
  uint32_t IdleTimeoutMs = 30000;
  /// Re-dispatches per job before it resolves as an error.
  unsigned RetryBudget = 2;
  /// Shared secret for the authenticated hello (empty = loopback
  /// default: liveness/version proof only).
  std::string Token;
  /// Opt-in gate for non-loopback TCP listeners.
  bool AllowNonLoopback = false;
  /// Worker heartbeat cadence; 0 disables liveness tracking.
  uint32_t HeartbeatIntervalMs = 1000;
  /// Quiet intervals before a worker is declared dead.
  unsigned HeartbeatMisses = 5;

  //===--- checkpoint/resume ------------------------------------------===//
  /// When non-empty, makeFleet journals completed cells here.
  std::string CheckpointPath;
  /// Resume from an existing CheckpointPath journal instead of starting
  /// one: completed cells are restored, only the remainder is served.
  bool Resume = false;

  /// Lifecycle observer for fleet runs (may be null; not owned).
  fleet::FleetEvents *Events = nullptr;
};

/// In-process execution across a JobScheduler pool.  Never fails.
std::unique_ptr<Executor> makeLocal(const FleetConfig &Config = FleetConfig());

/// Fleet execution through a coordinator listening on Config.ListenAddr.
/// On failure (bad address, refused non-loopback, unreadable checkpoint)
/// returns nullptr and sets \p Error.  On success, \p BoundAddress (when
/// non-null) receives the address workers should connect to — the real
/// ephemeral port when ListenAddr asked for port 0.
///
/// Defined in the hds_fleet library (src/fleet/FleetExecutor.cpp).
std::unique_ptr<Executor> makeFleet(const FleetConfig &Config,
                                    std::string *BoundAddress = nullptr,
                                    std::string *Error = nullptr);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXECUTORFACTORY_H
