//===- engine/Transport.cpp - Sockets for the distributed runner ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Transport.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace hds;
using namespace hds::engine;

namespace {

/// Millisecond deadline → the timeval SO_RCVTIMEO/SO_SNDTIMEO expects.
timeval deadlineToTimeval(uint32_t Ms) {
  timeval Tv;
  Tv.tv_sec = static_cast<long>(Ms / 1000u);
  Tv.tv_usec = static_cast<long>((Ms % 1000u) * 1000u);
  return Tv;
}

bool wouldBlock(int Err) { return Err == EAGAIN || Err == EWOULDBLOCK; }

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

//===----------------------------------------------------------------------===//
// Connection
//===----------------------------------------------------------------------===//

Connection::~Connection() { close(); }

Connection::Connection(Connection &&Other) noexcept
    : Fd(Other.Fd), Buffer(std::move(Other.Buffer)) {
  Other.Fd = -1;
}

Connection &Connection::operator=(Connection &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Buffer = std::move(Other.Buffer);
    Other.Fd = -1;
  }
  return *this;
}

void Connection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

void Connection::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Connection::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

bool Connection::setDeadlines(uint32_t RecvMs, uint32_t SendMs) {
  if (Fd < 0)
    return false;
  bool Ok = true;
  if (RecvMs != 0) {
    const timeval Tv = deadlineToTimeval(RecvMs);
    Ok = ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) == 0 &&
         Ok;
  }
  if (SendMs != 0) {
    const timeval Tv = deadlineToTimeval(SendMs);
    Ok = ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) == 0 &&
         Ok;
  }
  return Ok;
}

IoStatus Connection::sendAll(const uint8_t *Data, std::size_t Size) {
  std::size_t Sent = 0;
  while (Sent < Size) {
    const ssize_t N =
        ::send(Fd, Data + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<std::size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && wouldBlock(errno))
      return IoStatus::TimedOut;
    if (N < 0 && (errno == EPIPE || errno == ECONNRESET))
      return IoStatus::Closed;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Connection::sendFrame(wire::FrameType Type,
                               const std::vector<uint8_t> &Payload) {
  if (Fd < 0)
    return IoStatus::Error;
  const std::vector<uint8_t> Bytes = wire::encodeFrame(Type, Payload);
  return sendAll(Bytes.data(), Bytes.size());
}

IoStatus Connection::recvFrame(wire::Frame &Out, std::string &Error) {
  if (Fd < 0)
    return IoStatus::Error;
  for (;;) {
    if (!Buffer.empty()) {
      std::size_t Consumed = 0;
      switch (wire::decodeFrame(Buffer.data(), Buffer.size(), Out, Consumed,
                                Error)) {
      case wire::DecodeStatus::Ok:
        Buffer.erase(Buffer.begin(),
                     Buffer.begin() + static_cast<std::ptrdiff_t>(Consumed));
        return IoStatus::Ok;
      case wire::DecodeStatus::Malformed:
        return IoStatus::Malformed;
      case wire::DecodeStatus::NeedMore:
        break;
      }
    }

    uint8_t Chunk[16 * 1024];
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Buffer.insert(Buffer.end(), Chunk, Chunk + N);
      continue;
    }
    if (N == 0) {
      if (!Buffer.empty()) {
        Error = "connection closed mid-frame (truncated)";
        return IoStatus::Malformed;
      }
      return IoStatus::Closed;
    }
    if (errno == EINTR)
      continue;
    if (wouldBlock(errno))
      return IoStatus::TimedOut;
    if (errno == ECONNRESET)
      return IoStatus::Closed;
    return IoStatus::Error;
  }
}

//===----------------------------------------------------------------------===//
// Address parsing
//===----------------------------------------------------------------------===//

bool hds::engine::parseAddress(const std::string &Text, Address &Out,
                               std::string &Error) {
  if (Text.rfind("unix:", 0) == 0) {
    Out.IsUnix = true;
    Out.UnixPath = Text.substr(5);
    if (Out.UnixPath.empty()) {
      Error = "empty unix socket path in '" + Text + "'";
      return false;
    }
    sockaddr_un Probe;
    if (Out.UnixPath.size() >= sizeof(Probe.sun_path)) {
      Error = "unix socket path too long: '" + Out.UnixPath + "'";
      return false;
    }
    return true;
  }
  const std::size_t Colon = Text.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 >= Text.size()) {
    Error = "address '" + Text +
            "' is neither unix:/path nor host:port";
    return false;
  }
  Out.IsUnix = false;
  Out.Host = Text.substr(0, Colon);
  const std::string PortText = Text.substr(Colon + 1);
  char *End = nullptr;
  const unsigned long Port = std::strtoul(PortText.c_str(), &End, 10);
  if (End == PortText.c_str() || *End != '\0' || Port > 65535) {
    Error = "invalid port '" + PortText + "' in address '" + Text + "'";
    return false;
  }
  Out.Port = static_cast<uint16_t>(Port);
  in_addr Probe;
  if (::inet_pton(AF_INET, Out.Host.c_str(), &Probe) != 1) {
    Error = "host '" + Out.Host +
            "' is not a numeric IPv4 address (use 127.0.0.1 for loopback)";
    return false;
  }
  return true;
}

namespace {

bool fillSockaddrIn(const Address &Addr, sockaddr_in &Out) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sin_family = AF_INET;
  Out.sin_port = htons(Addr.Port);
  return ::inet_pton(AF_INET, Addr.Host.c_str(), &Out.sin_addr) == 1;
}

void fillSockaddrUn(const Address &Addr, sockaddr_un &Out) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sun_family = AF_UNIX;
  std::memcpy(Out.sun_path, Addr.UnixPath.c_str(), Addr.UnixPath.size());
}

} // namespace

Connection hds::engine::connectTo(const std::string &AddrText,
                                  std::string &Error) {
  Address Addr;
  if (!parseAddress(AddrText, Addr, Error))
    return Connection();

  const int Fd =
      ::socket(Addr.IsUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoMessage("socket");
    return Connection();
  }
  int Rc;
  if (Addr.IsUnix) {
    sockaddr_un Sun;
    fillSockaddrUn(Addr, Sun);
    Rc = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Sun),
                   sizeof(Sun));
  } else {
    sockaddr_in Sin;
    fillSockaddrIn(Addr, Sin);
    Rc = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Sin),
                   sizeof(Sin));
  }
  if (Rc != 0) {
    Error = errnoMessage("connect") + " (" + AddrText + ")";
    ::close(Fd);
    return Connection();
  }
  return Connection(Fd);
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Listener::~Listener() { close(); }

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (IsUnix && !UnixPath.empty())
    ::unlink(UnixPath.c_str());
  UnixPath.clear();
}

bool Listener::listen(const std::string &AddrText, std::string &Error) {
  Address Addr;
  if (!parseAddress(AddrText, Addr, Error))
    return false;

  const int NewFd =
      ::socket(Addr.IsUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (NewFd < 0) {
    Error = errnoMessage("socket");
    return false;
  }

  int Rc;
  if (Addr.IsUnix) {
    ::unlink(Addr.UnixPath.c_str());
    sockaddr_un Sun;
    fillSockaddrUn(Addr, Sun);
    Rc = ::bind(NewFd, reinterpret_cast<const sockaddr *>(&Sun),
                sizeof(Sun));
  } else {
    const int One = 1;
    ::setsockopt(NewFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Sin;
    fillSockaddrIn(Addr, Sin);
    Rc = ::bind(NewFd, reinterpret_cast<const sockaddr *>(&Sin),
                sizeof(Sin));
  }
  if (Rc != 0 || ::listen(NewFd, 64) != 0) {
    Error = errnoMessage(Rc != 0 ? "bind" : "listen") + " (" + AddrText + ")";
    ::close(NewFd);
    return false;
  }

  Fd = NewFd;
  IsUnix = Addr.IsUnix;
  if (IsUnix) {
    UnixPath = Addr.UnixPath;
    Bound = "unix:" + UnixPath;
  } else {
    // Port 0 asked the kernel for an ephemeral port; report the real one.
    sockaddr_in Sin;
    socklen_t Len = sizeof(Sin);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Sin), &Len) == 0) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%s:%u", Addr.Host.c_str(),
                    static_cast<unsigned>(ntohs(Sin.sin_port)));
      Bound = Buf;
    } else {
      Bound = AddrText;
    }
  }
  return true;
}

Listener::AcceptStatus Listener::accept(Connection &Out,
                                        uint32_t DeadlineMs) {
  if (Fd < 0)
    return AcceptStatus::Error;
  pollfd Pfd;
  Pfd.fd = Fd;
  Pfd.events = POLLIN;
  Pfd.revents = 0;
  const int Deadline =
      DeadlineMs > static_cast<uint32_t>(INT_MAX)
          ? INT_MAX
          : static_cast<int>(DeadlineMs);
  for (;;) {
    const int Ready = ::poll(&Pfd, 1, Deadline);
    if (Ready == 0)
      return AcceptStatus::TimedOut;
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      return AcceptStatus::Error;
    }
    const int ConnFd = ::accept(Fd, nullptr, nullptr);
    if (ConnFd < 0) {
      if (errno == EINTR || wouldBlock(errno))
        continue;
      return AcceptStatus::Error;
    }
    Out = Connection(ConnFd);
    return AcceptStatus::Ok;
  }
}
