//===- engine/JobScheduler.cpp - Fixed-size worker pool -------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/JobScheduler.h"

using namespace hds;
using namespace hds::engine;

JobScheduler::JobScheduler(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = 1;
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    Dropped += Queue.size();
    Pending -= Queue.size();
    Queue.clear();
    if (Pending == 0)
      AllDone.notify_all();
  }
  WorkReady.notify_all();
  // Workers (std::jthread) join in their destructor; they are declared
  // after every member they touch, so they are destroyed first.
}

void JobScheduler::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (ShuttingDown) {
      ++Dropped;
      return;
    }
    Queue.push_back(std::move(Job));
    ++Pending;
  }
  WorkReady.notify_one();
}

void JobScheduler::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void JobScheduler::cancel() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Dropped += Queue.size();
  Pending -= Queue.size();
  Queue.clear();
  if (Pending == 0)
    AllDone.notify_all();
}

std::size_t JobScheduler::executed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Executed;
}

std::size_t JobScheduler::dropped() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Dropped;
}

void JobScheduler::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock,
                     [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down and drained
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Executed;
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}
