//===- engine/ExperimentRunner.h - Run specs, shard matrices ---*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes experiment specs: one at a time (runExperiment) or as a
/// sharded matrix across a JobScheduler worker pool (runMatrix).  Each
/// job builds a private Runtime, so jobs share no mutable state; the
/// ResultSink merges their results in spec order, making the aggregate
/// deterministic for any thread count (docs/engine.md states the
/// contract precisely).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXPERIMENTRUNNER_H
#define HDS_ENGINE_EXPERIMENTRUNNER_H

#include "core/OptimizerConfig.h"
#include "core/RunStats.h"
#include "engine/ExperimentSpec.h"
#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// Outcome of one experiment.  Echoes the spec so a result is
/// self-describing wherever it travels (JSON writer, progress callbacks).
struct RunResult {
  enum class Status : uint8_t {
    Cancelled, ///< dropped before it ran (matrix cancellation)
    Error,     ///< could not run (unknown workload, ...)
    Ok,
  };

  ExperimentSpec Spec;
  Status State = Status::Cancelled;
  std::string Error;

  /// Iteration count actually executed (resolves Scale × default).
  uint64_t Iterations = 0;
  uint64_t Cycles = 0;
  core::RunStats Stats;
  memsim::HierarchyStats Memory;
  memsim::CacheStats L1;
  memsim::CacheStats L2;

  bool ok() const { return State == Status::Ok; }
};

/// Optional hook adjusting the materialized configuration before the
/// Runtime is constructed (the figure benches' ablation tweaks).  Tweaked
/// runs are not reproducible from the spec alone, so the matrix engine
/// never applies one; only direct runExperiment callers do.
using ConfigTweak = void (*)(core::OptimizerConfig &);

/// Runs one spec to completion in the calling thread.
RunResult runExperiment(const ExperimentSpec &Spec,
                        ConfigTweak Tweak = nullptr);

/// Matrix execution knobs.
struct MatrixOptions {
  /// Worker threads (clamped to at least 1).
  unsigned Jobs = 1;
  /// When non-null and set, jobs that have not started yet finish as
  /// Status::Cancelled instead of running.  Running jobs complete.
  const std::atomic<bool> *CancelRequested = nullptr;
  /// Progress callback: invoked once per finished job in *completion*
  /// order (serialized by the sink lock).  Index is the spec's position
  /// in the matrix.
  std::function<void(std::size_t Index, const RunResult &Result)> OnResult;
};

/// Runs every spec and returns results in spec order.  The returned
/// vector's contents are byte-identical for any Opts.Jobs value; only
/// wall-clock differs.
std::vector<RunResult> runMatrix(const std::vector<ExperimentSpec> &Specs,
                                 const MatrixOptions &Opts = MatrixOptions());

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXPERIMENTRUNNER_H
