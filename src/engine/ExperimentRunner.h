//===- engine/ExperimentRunner.h - Run one experiment spec -----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one experiment spec to completion (runExperiment).  Each run
/// builds a private Runtime, so concurrent runs share no mutable state.
/// Matrix execution — many specs sharded across threads or worker
/// processes — lives behind the Executor interface (engine/Executor.h);
/// this header is the single-job primitive every executor calls.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_EXPERIMENTRUNNER_H
#define HDS_ENGINE_EXPERIMENTRUNNER_H

#include "core/OptimizerConfig.h"
#include "core/RunStats.h"
#include "engine/ExperimentSpec.h"
#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"
#include "obs/CycleAccount.h"
#include "obs/Metrics.h"
#include "obs/PrefetchStats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace engine {

/// Wall-clock measurement a tool attaches to a result after running it.
/// src/ is clock-free (lint rule D1), so runExperiment always leaves this
/// zeroed; only callers that time the run themselves (tools/hds_bench)
/// fill it in.  Zero means "not measured" and serializers omit nothing —
/// the fields only reach the JSON when the caller opts in via
/// TimingInfo::IncludePerResult (engine/ResultsJson.h).
struct ResultTiming {
  uint64_t WallNanos = 0;       ///< wall time of the simulate phase
  uint64_t AccessesPerSec = 0;  ///< TotalAccesses / wall seconds, rounded
};

/// Stable metric enumeration for ResultTiming (append-only; see
/// obs/Metrics.h).  Gauges, not counters: wall-clock readings are
/// point-in-time by nature and excluded from determinism gates.
template <typename TimingT, typename Fn>
void visitResultTimingMetrics(TimingT &&Timing, Fn &&Visit) {
  using obs::MetricDef;
  using obs::MetricKind;
  Visit(MetricDef{"wall_ns", "nanoseconds",
                  "wall-clock time of the simulate phase, caller-measured",
                  MetricKind::Gauge},
        Timing.WallNanos);
  Visit(MetricDef{"accesses_per_sec", "accesses/s",
                  "simulated memory accesses retired per wall second",
                  MetricKind::Gauge},
        Timing.AccessesPerSec);
}

/// Outcome of one experiment.  Echoes the spec so a result is
/// self-describing wherever it travels (JSON writer, progress callbacks).
struct RunResult {
  enum class Status : uint8_t {
    Cancelled, ///< dropped before it ran (matrix cancellation)
    Error,     ///< could not run (unknown workload, ...)
    Ok,
  };

  ExperimentSpec Spec;
  Status State = Status::Cancelled;
  std::string Error;

  /// Iteration count actually executed (resolves Scale × default).
  uint64_t Iterations = 0;
  uint64_t Cycles = 0;
  core::RunStats Stats;
  memsim::HierarchyStats Memory;
  memsim::CacheStats L1;
  memsim::CacheStats L2;
  /// Attributed cycle account snapshot; Breakdown.total() == Cycles.
  obs::CycleBreakdown Breakdown;
  /// Per-hot-data-stream prefetch effectiveness, one row per stream ever
  /// installed during the run.
  std::vector<obs::StreamPrefetchStats> Streams;
  /// Per-hardware-prefetcher effectiveness (src/prefetch), one row per
  /// stack member — selector candidates included.  Empty when the spec
  /// enables no prefetcher.
  std::vector<obs::PrefetcherStats> Prefetchers;
  /// Caller-measured wall clock (never set by runExperiment itself).
  ResultTiming Timing;

  bool ok() const { return State == Status::Ok; }
};

/// Optional hook adjusting the materialized configuration before the
/// Runtime is constructed (the figure benches' ablation tweaks).  Tweaked
/// runs are not reproducible from the spec alone, so the matrix engine
/// never applies one; only direct runExperiment callers do.
using ConfigTweak = void (*)(core::OptimizerConfig &);

/// Runs one spec to completion in the calling thread.
RunResult runExperiment(const ExperimentSpec &Spec,
                        ConfigTweak Tweak = nullptr);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_EXPERIMENTRUNNER_H
