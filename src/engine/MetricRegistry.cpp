//===- engine/MetricRegistry.cpp - Catalog of every exported metric -------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/MetricRegistry.h"

#include "core/RunStats.h"
#include "engine/ExperimentRunner.h"
#include "memsim/Cache.h"
#include "memsim/MemoryHierarchy.h"
#include "obs/CycleAccount.h"
#include "obs/PrefetchStats.h"

#include <cstring>

using namespace hds;
using namespace hds::engine;

namespace {

/// Collects the MetricDefs an enumeration visits, discarding the field
/// references (the registry describes shape, not values).
struct DefCollector {
  std::vector<obs::MetricDef> &Defs;
  template <typename FieldT>
  void operator()(const obs::MetricDef &Def, const FieldT &) const {
    Defs.push_back(Def);
  }
};

std::vector<MetricBlock> buildRegistry() {
  std::vector<MetricBlock> Blocks;
  auto Add = [&Blocks](const char *Name, auto VisitFn) {
    MetricBlock Block;
    Block.Name = Name;
    VisitFn(DefCollector{Block.Metrics});
    Blocks.push_back(std::move(Block));
  };

  Add("result", [](auto Collect) {
    core::visitRunStatsMetrics(core::RunStats{}, Collect);
  });
  Add("phase", [](auto Collect) {
    core::visitCycleStatsMetrics(core::CycleStats{}, Collect);
  });
  Add("memory", [](auto Collect) {
    memsim::visitHierarchyStatsMetrics(memsim::HierarchyStats{}, Collect);
  });
  Add("cache", [](auto Collect) {
    memsim::visitCacheStatsMetrics(memsim::CacheStats{}, Collect);
  });
  Add("cycle_breakdown", [](auto Collect) {
    obs::visitCycleBreakdownMetrics(obs::CycleBreakdown{}, Collect);
  });
  Add("stream", [](auto Collect) {
    obs::visitStreamPrefetchStatsMetrics(obs::StreamPrefetchStats{}, Collect);
  });
  Add("prefetcher", [](auto Collect) {
    obs::visitPrefetcherStatsMetrics(obs::PrefetcherStats{}, Collect);
  });
  Add("timing", [](auto Collect) {
    visitResultTimingMetrics(ResultTiming{}, Collect);
  });
  return Blocks;
}

} // namespace

const std::vector<MetricBlock> &hds::engine::metricRegistry() {
  static const std::vector<MetricBlock> Registry = buildRegistry();
  return Registry;
}

const std::vector<const char *> &hds::engine::specIdentityFields() {
  static const std::vector<const char *> Fields = {
      "workload", "mode",   "mode_name", "scale", "seed",
      "head_length", "stride", "markov", "pin",   "adaptive",
      "stream_pf", "pair_pf", "duel_pf", "tuned",
  };
  return Fields;
}

const obs::MetricDef *hds::engine::findMetric(const char *Block,
                                              const std::string &Id) {
  for (const MetricBlock &Candidate : metricRegistry()) {
    if (std::strcmp(Candidate.Name, Block) != 0)
      continue;
    for (const obs::MetricDef &Def : Candidate.Metrics)
      if (Id == Def.Id)
        return &Def;
  }
  return nullptr;
}
