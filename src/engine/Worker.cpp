//===- engine/Worker.cpp - Distributed matrix worker loop -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Worker.h"

#include "engine/ExperimentRunner.h"
#include "engine/Transport.h"
#include "engine/Wire.h"

using namespace hds;
using namespace hds::engine;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

WorkerExit ioFailure(IoStatus Status, const std::string &Detail,
                     std::string *Error) {
  if (Status == IoStatus::TimedOut) {
    setError(Error, "coordinator went quiet past the I/O deadline");
    return WorkerExit::TimedOut;
  }
  setError(Error, Detail.empty() ? "connection to coordinator lost"
                                 : Detail);
  return WorkerExit::ProtocolError;
}

} // namespace

WorkerExit hds::engine::runWorker(const std::string &Addr,
                                  const WorkerOptions &Opts,
                                  std::string *Error) {
  std::string ConnectError;
  Connection Conn = connectTo(Addr, ConnectError);
  if (!Conn.valid()) {
    setError(Error, ConnectError);
    return WorkerExit::ConnectFailed;
  }
  Conn.setDeadlines(Opts.IoTimeoutMs, Opts.IoTimeoutMs);

  if (Conn.sendFrame(wire::FrameType::Hello, {}) != IoStatus::Ok) {
    setError(Error, "handshake send failed");
    return WorkerExit::ProtocolError;
  }

  uint64_t JobsRun = 0;
  for (;;) {
    if (Conn.sendFrame(wire::FrameType::JobRequest, {}) != IoStatus::Ok) {
      // A winding-down coordinator half-closes its receive side, which
      // unix sockets surface to us as a send failure (EPIPE) — unlike
      // TCP, where the peer's SHUT_RD is invisible.  Its Shutdown
      // farewell may still be in flight; prefer it over the error.
      wire::Frame Bye;
      std::string ByeError;
      if (Conn.recvFrame(Bye, ByeError) == IoStatus::Ok &&
          Bye.Type == wire::FrameType::Shutdown)
        return WorkerExit::CleanShutdown;
      setError(Error, "job request send failed");
      return WorkerExit::ProtocolError;
    }

    wire::Frame Frame;
    std::string DecodeError;
    const IoStatus Status = Conn.recvFrame(Frame, DecodeError);
    if (Status != IoStatus::Ok)
      return ioFailure(Status, DecodeError, Error);

    if (Frame.Type == wire::FrameType::Shutdown)
      return WorkerExit::CleanShutdown;
    if (Frame.Type != wire::FrameType::Assign) {
      setError(Error, "expected Assign or Shutdown frame");
      return WorkerExit::ProtocolError;
    }

    uint64_t Index = 0;
    ExperimentSpec Spec;
    if (!wire::decodeAssign(Frame.Payload, Index, Spec, DecodeError)) {
      setError(Error, "undecodable assignment: " + DecodeError);
      return WorkerExit::ProtocolError;
    }

    // The same private-Runtime execution an in-process job uses; the
    // result is a pure function of the spec, so where it ran is
    // invisible in the bytes.
    RunResult Result = runExperiment(Spec);
    ++JobsRun;

    if (Opts.DropAfterJobs != 0 && JobsRun >= Opts.DropAfterJobs) {
      // Fault injection: vanish exactly where a mid-job kill would —
      // the job ran but its result never reaches the coordinator.
      Conn.close();
      setError(Error, "fault injection: dropped connection after " +
                          std::to_string(JobsRun) + " job(s)");
      return WorkerExit::Dropped;
    }

    if (Conn.sendFrame(wire::FrameType::Result,
                       wire::encodeResult(Index, Result)) != IoStatus::Ok) {
      setError(Error, "result send failed");
      return WorkerExit::ProtocolError;
    }
  }
}
