//===- engine/Worker.h - Distributed matrix worker loop --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the distributed matrix runner: connect to a
/// coordinator, pull spec assignments, run each through the exact same
/// per-job private-Runtime path an in-process run uses
/// (engine/ExperimentRunner.h), and stream the results back.  Because
/// the simulation itself is a pure function of the spec, a result
/// computed here is byte-for-byte the result a local thread would have
/// produced — the wire moves bytes, it never changes them.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ENGINE_WORKER_H
#define HDS_ENGINE_WORKER_H

#include <cstdint>
#include <string>

namespace hds {
namespace engine {

struct WorkerOptions {
  /// Deadline for every send/recv.  Must comfortably exceed the
  /// coordinator's gap between assignments (a worker waiting for work
  /// blocks in recv until a job is pulled or the matrix resolves).
  uint32_t IoTimeoutMs = 120000;
  /// Fault injection for tests: after running this many jobs, drop the
  /// connection *without sending the last result* — exactly what a
  /// worker killed mid-job looks like to the coordinator.  0 = never.
  uint64_t DropAfterJobs = 0;
};

enum class WorkerExit : uint8_t {
  CleanShutdown, ///< coordinator said Shutdown: matrix resolved
  Dropped,       ///< DropAfterJobs fault injection tripped
  ConnectFailed,
  ProtocolError, ///< unexpected/undecodable frame, or send failed
  TimedOut,      ///< coordinator went quiet past IoTimeoutMs
};

/// Runs the worker loop against the coordinator at \p Addr
/// ("host:port" or "unix:/path") until shutdown or failure.  On
/// failure, \p Error (when non-null) carries a description.
WorkerExit runWorker(const std::string &Addr,
                     const WorkerOptions &Opts = WorkerOptions(),
                     std::string *Error = nullptr);

} // namespace engine
} // namespace hds

#endif // HDS_ENGINE_WORKER_H
