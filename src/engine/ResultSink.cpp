//===- engine/ResultSink.cpp - Deterministic result collection ------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "engine/ResultSink.h"

#include <cassert>
#include <utility>

using namespace hds;
using namespace hds::engine;

ResultSink::ResultSink(std::size_t SpecCount)
    : Results(SpecCount), Filled(SpecCount, false) {}

void ResultSink::deliver(std::size_t Index, RunResult Result) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Index < Results.size() && "result index out of range");
  assert(!Filled[Index] && "slot delivered twice");
  Results[Index] = std::move(Result);
  Filled[Index] = true;
  ++Completed;
  if (Callback)
    Callback(Index, Results[Index]);
}

void ResultSink::setCallback(
    std::function<void(std::size_t, const RunResult &)> NewCallback) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Callback = std::move(NewCallback);
}

std::size_t ResultSink::completed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Completed;
}

std::vector<RunResult> ResultSink::take() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Filled.assign(Filled.size(), false);
  Completed = 0;
  return std::move(Results);
}
