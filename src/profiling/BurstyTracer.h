//===- profiling/BurstyTracer.h - Low-overhead temporal profiling -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bursty tracing framework of Section 2.1/2.2 (Hirzel & Chilimbi's
/// extension [15] of Arnold-Ryder low-overhead profiling [3]).
///
/// Every procedure exists in two versions: checking code and instrumented
/// code (Figure 2).  Both periodically execute *dynamic checks* at
/// procedure entries and loop back-edges.  A counter pair decides where
/// execution continues:
///
///   * in checking code, nCheck is decremented at every check; at zero,
///     nInstr is initialized with nInstr0 and control transfers to the
///     instrumented code (a profiling burst begins);
///   * in instrumented code, nInstr is decremented at every check; at
///     zero, nCheck is re-initialized and control returns to checking
///     code (the burst ends).
///
/// nCheck0 + nInstr0 dynamic checks form one burst-period (Figure 3).
///
/// For online optimization the framework alternates between an awake phase
/// (nAwake burst-periods of real tracing) and a hibernating phase
/// (nHibernate burst-periods during which the counters are rewritten to
/// nCheck = nCheck0 + nInstr0 - 1 and nInstr = 1, so the profiler traces
/// next to nothing while burst-periods keep corresponding to the same
/// number of executed checks in either phase).  Everything is
/// deterministic — executions of deterministic benchmarks are repeatable,
/// which the paper calls out as a testing aid (and which our integration
/// tests rely on).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PROFILING_BURSTYTRACER_H
#define HDS_PROFILING_BURSTYTRACER_H

#include <cassert>
#include <cstdint>

namespace hds {
namespace profiling {

/// Counter settings (Section 4.1 defaults: 0.5% sampling with bursts of 60
/// checks, awake 50 of every 2,500 burst-periods).
struct BurstyTracingConfig {
  uint64_t NCheck0 = 11'940;
  uint64_t NInstr0 = 60;
  uint64_t NAwake = 50;
  uint64_t NHibernate = 2'450;
  /// When false the profiler never hibernates (pure Section 2.1 framework,
  /// used by the overhead characterization in Figure 11).
  bool HibernationEnabled = true;

  uint64_t burstPeriodChecks() const { return NCheck0 + NInstr0; }

  /// The awake-phase sampling rate nInstr0 / (nCheck0 + nInstr0).
  double awakeSamplingRate() const {
    return static_cast<double>(NInstr0) /
           static_cast<double>(burstPeriodChecks());
  }

  /// The overall sampling rate from Section 2.2:
  /// (nAwake*nInstr0) / ((nAwake+nHibernate)*(nInstr0+nCheck0)).
  double overallSamplingRate() const {
    if (!HibernationEnabled)
      return awakeSamplingRate();
    return static_cast<double>(NAwake * NInstr0) /
           (static_cast<double>(NAwake + NHibernate) *
            static_cast<double>(burstPeriodChecks()));
  }
};

/// Which phase of the online-optimization cycle the profiler is in.
enum class TracerPhase : uint8_t { Awake, Hibernating };

/// Events a dynamic check can report back to the runtime; the optimizer
/// reacts to phase boundaries (Figure 1's control cycle).
enum class CheckEvent : uint8_t {
  None,
  /// The awake phase just completed its nAwake-th burst-period: time to
  /// analyze and optimize, then hibernate.
  AwakeEnded,
  /// The hibernating phase is over: time to de-optimize and resume
  /// profiling.
  HibernationEnded,
};

/// The counter machine at the heart of the framework.
class BurstyTracer {
public:
  explicit BurstyTracer(const BurstyTracingConfig &Config);

  /// Executes one dynamic check (procedure entry or loop back-edge).
  /// Afterwards, inInstrumentedCode() says which code version runs until
  /// the next check.  The returned event flags phase boundaries.
  CheckEvent check();

  /// True while execution is in the instrumented (tracing) code version.
  bool inInstrumentedCode() const { return Instrumented; }

  TracerPhase phase() const { return Phase; }
  const BurstyTracingConfig &config() const { return Config; }

  uint64_t checksExecuted() const { return ChecksExecuted; }
  uint64_t instrumentedChecks() const { return InstrumentedChecks; }
  uint64_t completedBurstPeriods() const { return BurstPeriods; }
  uint64_t burstPeriodsInPhase() const { return PhaseBurstPeriods; }

  /// Restarts the whole cycle (fresh awake phase with reset counters).
  void reset();

  /// Changes the hibernation length (the current hibernating phase, if
  /// any, compares against the new value immediately).  Supports
  /// Saavedra & Park's adaptive profiling idea, which the paper
  /// calls "a useful extension to our simpler hibernation approach"
  /// (§5.2): hibernate longer while the program's behaviour is stable,
  /// re-profile sooner when it shifts.
  void setHibernationLength(uint64_t NHibernate) {
    assert(NHibernate > 0 && "phase lengths must be positive");
    Config.NHibernate = NHibernate;
  }

private:
  /// Loads nCheck/nInstr for the current phase (hibernation rewrites the
  /// counters as described in Section 2.2).
  uint64_t phaseNCheck() const {
    return Phase == TracerPhase::Awake ? Config.NCheck0
                                       : Config.NCheck0 + Config.NInstr0 - 1;
  }
  uint64_t phaseNInstr() const {
    return Phase == TracerPhase::Awake ? Config.NInstr0 : 1;
  }

  BurstyTracingConfig Config;
  TracerPhase Phase = TracerPhase::Awake;
  bool Instrumented = false;
  uint64_t NCheck = 0;
  uint64_t NInstr = 0;
  uint64_t ChecksExecuted = 0;
  uint64_t InstrumentedChecks = 0;
  uint64_t BurstPeriods = 0;
  uint64_t PhaseBurstPeriods = 0;
};

} // namespace profiling
} // namespace hds

#endif // HDS_PROFILING_BURSTYTRACER_H
