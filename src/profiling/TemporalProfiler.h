//===- profiling/TemporalProfiler.h - Trace -> Sequitur bridge -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects the sampled temporal data reference profile: interns each
/// traced (pc, addr) reference and appends it to an online Sequitur
/// grammar.  Section 2.4: references are sent to Sequitur as soon as they
/// are collected (Sequitur is incremental), and references traced during
/// hibernation are ignored to avoid trace contamination — the caller
/// enforces the latter by only invoking recordRef() while awake.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_PROFILING_TEMPORALPROFILER_H
#define HDS_PROFILING_TEMPORALPROFILER_H

#include "analysis/DataRef.h"
#include "sequitur/Grammar.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace hds {
namespace profiling {

/// Owns the per-cycle Sequitur grammar and the process-lifetime reference
/// interning table.
class TemporalProfiler {
public:
  TemporalProfiler() : TheGrammar(std::make_unique<sequitur::Grammar>()) {}

  /// Interns \p Ref and appends it to the grammar.  Returns the id.
  analysis::RefId recordRef(const analysis::DataRef &Ref) {
    const analysis::RefId Id = Refs.intern(Ref);
    TheGrammar->append(Id);
    ++TracedRefs;
    ++PcCounts[Ref.Pc];
    return Id;
  }

  /// Sampled occurrences of \p Pc in the current cycle's trace.  The
  /// optimizer uses this to keep injected checks off hot program points
  /// (an instrumented pc pays its check clauses on *every* execution).
  uint64_t pcSampleCount(uint64_t Pc) const {
    auto It = PcCounts.find(Pc);
    return It == PcCounts.end() ? 0 : It->second;
  }

  const sequitur::Grammar &grammar() const { return *TheGrammar; }
  sequitur::Grammar &grammar() { return *TheGrammar; }

  const analysis::DataRefTable &refTable() const { return Refs; }
  analysis::DataRefTable &refTable() { return Refs; }

  /// References traced in the current profiling cycle.
  uint64_t tracedRefCount() const { return TracedRefs; }

  /// Starts a new profiling cycle: fresh grammar, empty counter.  The
  /// interning table persists across cycles so reference ids stay stable.
  void startNewCycle() {
    TheGrammar = std::make_unique<sequitur::Grammar>();
    TracedRefs = 0;
    PcCounts.clear();
  }

private:
  analysis::DataRefTable Refs;
  std::unique_ptr<sequitur::Grammar> TheGrammar;
  uint64_t TracedRefs = 0;
  std::unordered_map<uint64_t, uint64_t> PcCounts;
};

} // namespace profiling
} // namespace hds

#endif // HDS_PROFILING_TEMPORALPROFILER_H
