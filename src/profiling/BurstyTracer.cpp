//===- profiling/BurstyTracer.cpp - Low-overhead temporal profiling -------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "profiling/BurstyTracer.h"

using namespace hds;
using namespace hds::profiling;

BurstyTracer::BurstyTracer(const BurstyTracingConfig &Cfg)
    : Config(Cfg) {
  assert(Config.NCheck0 > 0 && Config.NInstr0 > 0 &&
         "counters must be positive");
  assert((!Config.HibernationEnabled ||
          (Config.NAwake > 0 && Config.NHibernate > 0)) &&
         "phase lengths must be positive when hibernating");
  reset();
}

void BurstyTracer::reset() {
  Phase = TracerPhase::Awake;
  Instrumented = false;
  NCheck = phaseNCheck();
  NInstr = 0;
  ChecksExecuted = 0;
  InstrumentedChecks = 0;
  BurstPeriods = 0;
  PhaseBurstPeriods = 0;
}

CheckEvent BurstyTracer::check() {
  ++ChecksExecuted;

  if (!Instrumented) {
    assert(NCheck > 0 && "checking counter exhausted");
    if (--NCheck == 0) {
      NInstr = phaseNInstr();
      Instrumented = true;
    }
    return CheckEvent::None;
  }

  ++InstrumentedChecks;
  assert(NInstr > 0 && "instrumented counter exhausted");
  if (--NInstr > 0)
    return CheckEvent::None;

  // The burst ended: one burst-period (nCheck + nInstr checks) completed.
  Instrumented = false;
  ++BurstPeriods;
  ++PhaseBurstPeriods;
  NCheck = phaseNCheck();

  if (!Config.HibernationEnabled)
    return CheckEvent::None;

  if (Phase == TracerPhase::Awake && PhaseBurstPeriods >= Config.NAwake) {
    Phase = TracerPhase::Hibernating;
    PhaseBurstPeriods = 0;
    NCheck = phaseNCheck();
    return CheckEvent::AwakeEnded;
  }
  if (Phase == TracerPhase::Hibernating &&
      PhaseBurstPeriods >= Config.NHibernate) {
    Phase = TracerPhase::Awake;
    PhaseBurstPeriods = 0;
    NCheck = phaseNCheck();
    return CheckEvent::HibernationEnded;
  }
  return CheckEvent::None;
}
