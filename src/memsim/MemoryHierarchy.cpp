//===- memsim/MemoryHierarchy.cpp - Two-level hierarchy + prefetch --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "memsim/MemoryHierarchy.h"

#include <algorithm>

using namespace hds;
using namespace hds::memsim;

MemoryHierarchy::MemoryHierarchy(const CacheConfig &L1Config,
                                 const CacheConfig &L2Config,
                                 const LatencyConfig &Lat)
    : L1(L1Config), L2(L2Config), Latency(Lat) {
  assert(L1Config.BlockBytes == L2Config.BlockBytes &&
         "levels must share a block size");
  InFlight.reserve(Latency.MaxInFlightPrefetches);
}

void MemoryHierarchy::drainDuePrefetches() {
  if (InFlight.empty())
    return;
  auto IsDue = [&](const InFlightPrefetch &P) { return P.ReadyCycle <= Now; };
  for (const InFlightPrefetch &P : InFlight) {
    if (!IsDue(P))
      continue;
    const Addr BlockAddr = P.BlockNumber * L1.config().BlockBytes;
    L1.fill(BlockAddr, /*IsPrefetch=*/true);
    if (P.FillL2)
      L2.fill(BlockAddr, /*IsPrefetch=*/true);
  }
  InFlight.erase(std::remove_if(InFlight.begin(), InFlight.end(), IsDue),
                 InFlight.end());
}

MemoryHierarchy::InFlightPrefetch *MemoryHierarchy::findInFlight(Addr Address) {
  const uint64_t Block = blockNumber(Address);
  for (InFlightPrefetch &P : InFlight)
    if (P.BlockNumber == Block)
      return &P;
  return nullptr;
}

uint64_t MemoryHierarchy::access(Addr Address) {
  drainDuePrefetches();
  ++Stats.DemandAccesses;

  // L1 hit: single-cycle, no stall.
  if (L1.access(Address)) {
    charge(Latency.L1HitCycles, 0);
    return Latency.L1HitCycles;
  }

  // The block may still be on its way in: wait out the remaining latency.
  // This is how an early-but-not-early-enough prefetch still hides part of
  // a miss.
  if (InFlightPrefetch *P = findInFlight(Address)) {
    const uint64_t Remaining = P->ReadyCycle - Now;
    ++Stats.PartialHits;
    charge(Remaining, Remaining, /*PartialHit=*/true);
    drainDuePrefetches(); // fills this block (and any other due ones)
    // The arriving line counts as a useful prefetch the moment demand
    // touches it.
    L1.access(Address);
    charge(Latency.L1HitCycles, 0);
    return Remaining + Latency.L1HitCycles;
  }

  // L2 hit: fill L1 and pay the L2 latency.
  if (L2.access(Address)) {
    L1.fill(Address, /*IsPrefetch=*/false);
    charge(Latency.L2HitCycles, Latency.L2HitCycles - Latency.L1HitCycles);
    return Latency.L2HitCycles;
  }

  // Memory: fill both levels.
  L2.fill(Address, /*IsPrefetch=*/false);
  L1.fill(Address, /*IsPrefetch=*/false);
  charge(Latency.MemoryCycles, Latency.MemoryCycles - Latency.L1HitCycles);
  return Latency.MemoryCycles;
}

void MemoryHierarchy::prefetchT0(Addr Address, bool ChargeIssueSlot) {
  drainDuePrefetches();
  if (ChargeIssueSlot)
    charge(Latency.PrefetchIssueCycles, 0);
  ++Stats.PrefetchesIssued;

  if (L1.contains(Address) || findInFlight(Address)) {
    ++Stats.PrefetchesRedundant;
    return;
  }
  if (InFlight.size() >= Latency.MaxInFlightPrefetches) {
    ++Stats.PrefetchesDroppedQueueFull;
    return;
  }

  InFlightPrefetch Entry;
  Entry.BlockNumber = blockNumber(Address);
  if (L2.contains(Address)) {
    // L2-resident: only the L1 fill is outstanding.  Touch L2 recency so
    // the line stays resident for the expected demand access.
    L2.access(Address);
    Entry.ReadyCycle = Now + Latency.L2HitCycles;
    Entry.FillL2 = false;
  } else {
    Entry.ReadyCycle = Now + Latency.MemoryCycles;
    Entry.FillL2 = true;
  }
  InFlight.push_back(Entry);
}

void MemoryHierarchy::reset() {
  InFlight.clear();
  L1.reset();
  L2.reset();
  Now = 0;
}

void MemoryHierarchy::clearStats() {
  Stats = HierarchyStats();
  L1.clearStats();
  L2.clearStats();
}
