//===- memsim/MemoryHierarchy.cpp - Two-level hierarchy + prefetch --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "memsim/MemoryHierarchy.h"

#include <algorithm>

using namespace hds;
using namespace hds::memsim;

MemoryHierarchy::MemoryHierarchy(const CacheConfig &L1Config,
                                 const CacheConfig &L2Config,
                                 const LatencyConfig &Lat)
    : L1(L1Config), L2(L2Config), Latency(Lat) {
  assert(L1Config.BlockBytes == L2Config.BlockBytes &&
         "levels must share a block size");
  InFlight.reserve(Latency.MaxInFlightPrefetches);
}

void MemoryHierarchy::drainDuePrefetches() {
  if (InFlight.empty())
    return;
  const uint64_t Now = Account.total();
  auto IsDue = [&](const InFlightPrefetch &P) { return P.ReadyCycle <= Now; };
  for (const InFlightPrefetch &P : InFlight) {
    if (!IsDue(P))
      continue;
    const Addr BlockAddr = P.BlockNumber * L1.config().BlockBytes;
    const Cache::EvictInfo Evicted =
        L1.fill(BlockAddr, /*IsPrefetch=*/true, P.StreamTag);
    if (Evicted.EvictedUntouchedPrefetch) {
      ++Stats.PrefetchesUnusedEvicted;
      ++bucket(Evicted.EvictedStreamTag).UnusedEvicted;
    }
    if (P.FillL2)
      L2.fill(BlockAddr, /*IsPrefetch=*/true, P.StreamTag);
  }
  InFlight.erase(std::remove_if(InFlight.begin(), InFlight.end(), IsDue),
                 InFlight.end());
}

MemoryHierarchy::InFlightPrefetch *MemoryHierarchy::findInFlight(Addr Address) {
  const uint64_t Block = blockNumber(Address);
  for (InFlightPrefetch &P : InFlight)
    if (P.BlockNumber == Block)
      return &P;
  return nullptr;
}

uint64_t MemoryHierarchy::access(Addr Address) {
  drainDuePrefetches();
  ++Stats.DemandAccesses;

  // L1 hit: single-cycle, no stall.  A hit on a prefetched-untouched line
  // is the prefetch paying off in full — the "useful" class.
  Cache::AccessInfo L1Info;
  if (L1.access(Address, &L1Info)) {
    if (L1Info.PrefetchHit) {
      ++Stats.PrefetchesUseful;
      ++bucket(L1Info.StreamTag).Useful;
    }
    charge(Latency.L1HitCycles, 0);
    return Latency.L1HitCycles;
  }

  // The block may still be on its way in: wait out the remaining latency.
  // This is how an early-but-not-early-enough prefetch still hides part of
  // a miss — the "late" class.
  if (InFlightPrefetch *P = findInFlight(Address)) {
    const uint64_t Remaining = P->ReadyCycle - Account.total();
    ++Stats.PartialHits;
    ++bucket(P->StreamTag).Late;
    charge(Remaining, Remaining, /*PartialHit=*/true);
    drainDuePrefetches(); // fills this block (and any other due ones)
    // The arriving line counts as a useful prefetch in the cache-level
    // stats the moment demand touches it; hierarchy-level classification
    // already recorded the event as late.
    L1.access(Address);
    charge(Latency.L1HitCycles, 0);
    return Remaining + Latency.L1HitCycles;
  }

  // L2 hit: fill L1 and pay the L2 latency.  A prefetched-untouched L2
  // line is likewise a useful prefetch (it halved the miss latency).
  Cache::AccessInfo L2Info;
  if (L2.access(Address, &L2Info)) {
    if (L2Info.PrefetchHit) {
      ++Stats.PrefetchesUseful;
      ++bucket(L2Info.StreamTag).Useful;
    }
    const Cache::EvictInfo Evicted = L1.fill(Address, /*IsPrefetch=*/false);
    if (Evicted.EvictedUntouchedPrefetch) {
      ++Stats.PrefetchesUnusedEvicted;
      ++bucket(Evicted.EvictedStreamTag).UnusedEvicted;
    }
    charge(Latency.L2HitCycles, Latency.L2HitCycles - Latency.L1HitCycles);
    return Latency.L2HitCycles;
  }

  // Memory: fill both levels.
  L2.fill(Address, /*IsPrefetch=*/false);
  const Cache::EvictInfo Evicted = L1.fill(Address, /*IsPrefetch=*/false);
  if (Evicted.EvictedUntouchedPrefetch) {
    ++Stats.PrefetchesUnusedEvicted;
    ++bucket(Evicted.EvictedStreamTag).UnusedEvicted;
  }
  charge(Latency.MemoryCycles, Latency.MemoryCycles - Latency.L1HitCycles);
  return Latency.MemoryCycles;
}

void MemoryHierarchy::prefetchT0(Addr Address, bool ChargeIssueSlot,
                                 uint32_t StreamTag) {
  drainDuePrefetches();
  if (ChargeIssueSlot)
    Account.charge(Latency.PrefetchIssueCycles,
                   obs::CyclePhase::PrefetchIssue);
  ++Stats.PrefetchesIssued;
  ++bucket(StreamTag).Issued;

  if (L1.contains(Address) || findInFlight(Address)) {
    ++Stats.PrefetchesRedundant;
    ++bucket(StreamTag).Redundant;
    return;
  }
  if (InFlight.size() >= Latency.MaxInFlightPrefetches) {
    ++Stats.PrefetchesDroppedQueueFull;
    ++bucket(StreamTag).DroppedQueueFull;
    return;
  }

  InFlightPrefetch Entry;
  Entry.BlockNumber = blockNumber(Address);
  Entry.StreamTag = StreamTag;
  if (L2.contains(Address)) {
    // L2-resident: only the L1 fill is outstanding.  Touch L2 recency so
    // the line stays resident for the expected demand access.
    L2.access(Address);
    Entry.ReadyCycle = Account.total() + Latency.L2HitCycles;
    Entry.FillL2 = false;
  } else {
    Entry.ReadyCycle = Account.total() + Latency.MemoryCycles;
    Entry.FillL2 = true;
  }
  InFlight.push_back(Entry);
}

void MemoryHierarchy::reset() {
  InFlight.clear();
  L1.reset();
  L2.reset();
  Account.reset();
}

void MemoryHierarchy::clearStats() {
  Stats = HierarchyStats();
  L1.clearStats();
  L2.clearStats();
  StreamClasses.clear();
  Untagged = obs::PrefetchClassCounts();
}
