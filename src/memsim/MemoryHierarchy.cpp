//===- memsim/MemoryHierarchy.cpp - Two-level hierarchy + prefetch --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "memsim/MemoryHierarchy.h"

using namespace hds;
using namespace hds::memsim;

MemoryHierarchy::MemoryHierarchy(const CacheConfig &L1Config,
                                 const CacheConfig &L2Config,
                                 const LatencyConfig &Lat)
    : L1(L1Config), L2(L2Config), Latency(Lat) {
  assert(L1Config.BlockBytes == L2Config.BlockBytes &&
         "levels must share a block size");
  InFlightReady.reserve(Latency.MaxInFlightPrefetches);
  InFlightBlock.reserve(Latency.MaxInFlightPrefetches);
  InFlightMeta.reserve(Latency.MaxInFlightPrefetches);
}

void MemoryHierarchy::drainDuePrefetchesSlow() {
  // One pass fills due entries, compacts the survivors in place, and
  // tracks the new earliest ready cycle.  Fills happen in queue order,
  // exactly as the separate fill / remove_if / min passes this replaces
  // did, and the compaction moves only queue entries — it never touches
  // cache state — so the simulated state transitions are identical.
  // This runs every time a prefetch comes due (millions of times per
  // prefetching-mode cell), so the pass count matters.
  const uint64_t Now = Account.total();
  const size_t Size = InFlightReady.size();
  uint64_t NextReady = ~uint64_t{0};
  size_t Keep = 0;
  for (size_t I = 0; I < Size; ++I) {
    const uint64_t Ready = InFlightReady[I];
    if (Ready <= Now) {
      const Addr BlockAddr = InFlightBlock[I] * L1.config().BlockBytes;
      const uint32_t StreamTag = inFlightTag(I);
      const Cache::EvictInfo Evicted =
          L1.fill(BlockAddr, /*IsPrefetch=*/true, StreamTag);
      if (Evicted.EvictedUntouchedPrefetch)
        recordEviction(Evicted);
      if (inFlightFillsL2(I))
        L2.fill(BlockAddr, /*IsPrefetch=*/true, StreamTag);
      if (Listener) {
        PendingFillBlock.push_back(InFlightBlock[I]);
        PendingFillTag.push_back(StreamTag);
      }
    } else {
      NextReady = Ready < NextReady ? Ready : NextReady;
      InFlightReady[Keep] = Ready;
      InFlightBlock[Keep] = InFlightBlock[I];
      InFlightMeta[Keep] = InFlightMeta[I];
      ++Keep;
    }
  }
  InFlightReady.resize(Keep);
  InFlightBlock.resize(Keep);
  InFlightMeta.resize(Keep);
  NextReadyCycle = NextReady;

  // Fill callbacks run only now that the queue is consistent, so a
  // chaining listener may issue follow-up prefetches from inside the
  // callback (prefetchT0 re-enters drainDuePrefetches, which has nothing
  // due anymore and returns immediately).
  if (Listener && !PendingFillBlock.empty()) {
    for (size_t I = 0; I < PendingFillBlock.size(); ++I)
      Listener->onPrefetchFill(PendingFillBlock[I] * L1.config().BlockBytes,
                               static_cast<uint32_t>(PendingFillTag[I]),
                               *this);
    PendingFillBlock.clear();
    PendingFillTag.clear();
  }
}

void MemoryHierarchy::prefetchT0(Addr Address, bool ChargeIssueSlot,
                                 uint32_t StreamTag) {
  drainDuePrefetches();
  if (ChargeIssueSlot)
    Account.charge(Latency.PrefetchIssueCycles,
                   obs::CyclePhase::PrefetchIssue);
  ++Stats.PrefetchesIssued;
  ++bucket(StreamTag).Issued;

  if (L1.contains(Address) || findInFlight(Address) != NotInFlight) {
    ++Stats.PrefetchesRedundant;
    ++bucket(StreamTag).Redundant;
    return;
  }
  if (InFlightReady.size() >= Latency.MaxInFlightPrefetches) {
    ++Stats.PrefetchesDroppedQueueFull;
    ++bucket(StreamTag).DroppedQueueFull;
    return;
  }

  // L2-resident: only the L1 fill is outstanding.  touchIfPresent probes
  // once, refreshing L2 recency on a hit so the line stays resident for
  // the expected demand access.
  uint64_t ReadyCycle;
  bool FillL2;
  if (L2.touchIfPresent(Address)) {
    ReadyCycle = Account.total() + Latency.L2HitCycles;
    FillL2 = false;
  } else {
    ReadyCycle = Account.total() + Latency.MemoryCycles;
    FillL2 = true;
  }
  InFlightReady.push_back(ReadyCycle);
  InFlightBlock.push_back(blockNumber(Address));
  InFlightMeta.push_back((uint64_t{StreamTag} << 1) | (FillL2 ? 1 : 0));
  if (ReadyCycle < NextReadyCycle)
    NextReadyCycle = ReadyCycle;
}

void MemoryHierarchy::reset() {
  InFlightReady.clear();
  InFlightBlock.clear();
  InFlightMeta.clear();
  NextReadyCycle = ~uint64_t{0};
  L1.reset();
  L2.reset();
  Account.reset();
}

void MemoryHierarchy::clearStats() {
  Stats = HierarchyStats();
  L1.clearStats();
  L2.clearStats();
  StreamClasses.clear();
  Untagged = obs::PrefetchClassCounts();
}
