//===- memsim/Cache.cpp - Set-associative LRU cache model -----------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "memsim/Cache.h"

#include <bit>

using namespace hds;
using namespace hds::memsim;

Cache::Cache(const CacheConfig &Cfg) : Config(Cfg), NumSets(Cfg.numSets()) {
  Lines.assign(NumSets * 2 * Cfg.Associativity, 0);
  StreamTags.assign(NumSets * Cfg.Associativity, obs::NoStreamTag);

  if (std::has_single_bit(uint64_t{Cfg.BlockBytes}) &&
      std::has_single_bit(NumSets)) {
    ShiftGeometry = true;
    BlockShift = static_cast<unsigned>(
        std::countr_zero(uint64_t{Cfg.BlockBytes}));
    SetShift = static_cast<unsigned>(std::countr_zero(NumSets));
    SetMask = NumSets - 1;
  }
}

void Cache::reset() {
  Lines.assign(Lines.size(), 0);
  StreamTags.assign(StreamTags.size(), obs::NoStreamTag);
  UseClock = 0;
}

uint64_t Cache::validLineCount() const {
  const unsigned A = Config.Associativity;
  uint64_t Count = 0;
  for (uint64_t Set = 0; Set < NumSets; ++Set)
    for (unsigned Way = 0; Way < A; ++Way)
      if (Lines[Set * 2 * A + A + Way] != 0)
        ++Count;
  return Count;
}
