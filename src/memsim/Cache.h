//===- memsim/Cache.h - Set-associative LRU cache model --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tag-only set-associative cache with LRU replacement.
///
/// The paper's evaluation machine had a 16 KB 4-way L1 data cache and a
/// 256 KB 8-way L2, both with 32-byte blocks (Section 4.1).  This class
/// models one such level; MemoryHierarchy composes two of them with main
/// memory and an in-flight prefetch queue.
///
/// Lines remember which hot data stream prefetched them (obs::NoStreamTag
/// for demand fills and hardware prefetchers), so the hierarchy can
/// attribute useful / unused-evicted classification events back to the
/// stream that earned them (obs/PrefetchStats.h).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_MEMSIM_CACHE_H
#define HDS_MEMSIM_CACHE_H

#include "obs/Metrics.h"
#include "obs/PrefetchStats.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace hds {
namespace memsim {

/// A physical address in the simulated machine.
using Addr = uint64_t;

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 16 * 1024;
  unsigned Associativity = 4;
  unsigned BlockBytes = 32;

  uint64_t numSets() const {
    assert(SizeBytes % (static_cast<uint64_t>(Associativity) * BlockBytes) ==
               0 &&
           "size must be a whole number of sets");
    return SizeBytes / (static_cast<uint64_t>(Associativity) * BlockBytes);
  }

  /// The paper's L1 data cache: 16 KB, 4-way, 32 B blocks.
  static CacheConfig pentiumIIIL1() { return CacheConfig{16 * 1024, 4, 32}; }
  /// The paper's L2 cache: 256 KB, 8-way, 32 B blocks.
  static CacheConfig pentiumIIIL2() { return CacheConfig{256 * 1024, 8, 32}; }
};

/// Hit/miss/fill counters for one cache level.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t DemandFills = 0;
  uint64_t PrefetchFills = 0;
  uint64_t Evictions = 0;
  /// Demand hits on blocks that were brought in by a prefetch and had not
  /// yet been touched by demand (each such hit is a prefetch that paid off).
  uint64_t UsefulPrefetches = 0;
  /// Prefetched blocks evicted before any demand touch (pure pollution).
  uint64_t WastedPrefetches = 0;

  uint64_t accesses() const { return Hits + Misses; }
  double missRate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(Misses) /
                     static_cast<double>(accesses());
  }
};

/// Stable metric enumeration: fixed, append-only order shared by every
/// serializer (see obs/Metrics.h for the contract).
template <typename CacheStatsT, typename Fn>
void visitCacheStatsMetrics(CacheStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"hits", "accesses", "demand hits at this level"},
        Stats.Hits);
  Visit(MetricDef{"misses", "accesses", "demand misses at this level"},
        Stats.Misses);
  Visit(MetricDef{"demand_fills", "fills", "lines filled by demand misses"},
        Stats.DemandFills);
  Visit(MetricDef{"prefetch_fills", "fills", "lines filled by prefetches"},
        Stats.PrefetchFills);
  Visit(MetricDef{"evictions", "lines", "valid lines replaced"},
        Stats.Evictions);
  Visit(MetricDef{"useful_prefetches", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.UsefulPrefetches);
  Visit(MetricDef{"wasted_prefetches", "prefetches",
                  "prefetched lines evicted before any demand touch"},
        Stats.WastedPrefetches);
}

/// One level of a set-associative, true-LRU, tag-only cache.
///
/// Lines carry a "prefetched, not yet demanded" bit so the statistics can
/// separate useful prefetches from pollution — the effect that makes the
/// paper's Seq-pref straw man lose on most benchmarks (Section 4.3).
class Cache {
public:
  /// Classification detail reported by access(): whether the hit consumed
  /// a prefetched-untouched line, and which stream prefetched it.
  struct AccessInfo {
    bool PrefetchHit = false;
    uint32_t StreamTag = obs::NoStreamTag;
  };

  /// Classification detail reported by fill(): whether the victim was a
  /// prefetched line that no demand access ever touched.
  struct EvictInfo {
    bool EvictedUntouchedPrefetch = false;
    uint32_t EvictedStreamTag = obs::NoStreamTag;
  };

  explicit Cache(const CacheConfig &Config);

  /// Looks up \p Address without changing any state.
  bool contains(Addr Address) const;

  /// Demand access: returns true on hit (and updates LRU + prefetch
  /// accounting).  On miss, no fill happens here — the hierarchy decides
  /// where fills go.  When \p Info is non-null it receives the prefetch
  /// classification detail for this access.
  bool access(Addr Address, AccessInfo *Info = nullptr);

  /// Fills the block containing \p Address, evicting LRU if needed.
  /// \p IsPrefetch marks the line for useful/wasted prefetch accounting;
  /// \p StreamTag records which hot data stream issued the prefetch.
  /// Returns eviction classification detail for the victim line.
  EvictInfo fill(Addr Address, bool IsPrefetch,
                 uint32_t StreamTag = obs::NoStreamTag);

  /// Drops all lines (used between benchmark configurations).
  void reset();

  const CacheConfig &config() const { return Config; }
  const CacheStats &stats() const { return Stats; }
  void clearStats() { Stats = CacheStats(); }

  /// Number of currently valid lines (for tests).
  uint64_t validLineCount() const;

private:
  struct Line {
    Addr Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
    bool PrefetchedUntouched = false;
    uint32_t StreamTag = obs::NoStreamTag;
  };

  uint64_t blockNumber(Addr Address) const {
    return Address / Config.BlockBytes;
  }
  uint64_t setIndex(Addr Address) const {
    return blockNumber(Address) % NumSets;
  }
  Addr tagOf(Addr Address) const { return blockNumber(Address) / NumSets; }

  Line *findLine(Addr Address);
  const Line *findLine(Addr Address) const;

  CacheConfig Config;
  uint64_t NumSets;
  uint64_t UseClock = 0;
  std::vector<Line> Lines; // NumSets * Associativity, set-major.
  CacheStats Stats;
};

} // namespace memsim
} // namespace hds

#endif // HDS_MEMSIM_CACHE_H
