//===- memsim/Cache.h - Set-associative LRU cache model --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tag-only set-associative cache with LRU replacement.
///
/// The paper's evaluation machine had a 16 KB 4-way L1 data cache and a
/// 256 KB 8-way L2, both with 32-byte blocks (Section 4.1).  This class
/// models one such level; MemoryHierarchy composes two of them with main
/// memory and an in-flight prefetch queue.
///
/// Lines remember which hot data stream prefetched them (obs::NoStreamTag
/// for demand fills and hardware prefetchers), so the hierarchy can
/// attribute useful / unused-evicted classification events back to the
/// stream that earned them (obs/PrefetchStats.h).
///
/// Performance model of the model: the simulator's own working set is the
/// line metadata, and a modelled L2 is big enough (256 KB of modelled
/// lines) that every probe of a cold set is a *host* cache miss per array
/// touched.  The layout therefore packs one set's hot metadata into two
/// adjacent 64-bit runs — all the set's encoded tags, then all its
/// recency words — so a probe costs one host line for a 4-way set and
/// two for an 8-way set, instead of one per parallel array:
///
///   Lines[set * 2A + way]      encoded tag: (tag << 1) | 1, 0 = invalid
///   Lines[set * 2A + A + way]  recency:     (stamp << 1) | prefetched
///
/// UseClock pre-increments, so a valid line always has stamp >= 1 and a
/// recency word of 0 means invalid.  Stamps are unique, so comparing the
/// shifted recency words orders lines exactly like the raw stamps, and
/// the original "first invalid way, else lowest LastUse" victim policy
/// folds into one branchless first-wins argmin.  The prefetched-untouched
/// flag rides in recency bit 0, leaving the per-stream attribution tag
/// (read only on the rare classification events) in a cold side array.
/// Address-to-set geometry is shift/mask for power-of-two configurations
/// (every real configuration in the tree) with a div/mod fallback.
/// src/testing/ReferenceCache.h keeps the straightforward
/// array-of-line-structs model this replaced; tests/cache_model_test.cpp
/// drives both in lockstep.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_MEMSIM_CACHE_H
#define HDS_MEMSIM_CACHE_H

#include "obs/Metrics.h"
#include "obs/PrefetchStats.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace hds {
namespace memsim {

/// A physical address in the simulated machine.
using Addr = uint64_t;

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 16 * 1024;
  unsigned Associativity = 4;
  unsigned BlockBytes = 32;

  uint64_t numSets() const {
    assert(SizeBytes % (static_cast<uint64_t>(Associativity) * BlockBytes) ==
               0 &&
           "size must be a whole number of sets");
    return SizeBytes / (static_cast<uint64_t>(Associativity) * BlockBytes);
  }

  /// The paper's L1 data cache: 16 KB, 4-way, 32 B blocks.
  static CacheConfig pentiumIIIL1() { return CacheConfig{16 * 1024, 4, 32}; }
  /// The paper's L2 cache: 256 KB, 8-way, 32 B blocks.
  static CacheConfig pentiumIIIL2() { return CacheConfig{256 * 1024, 8, 32}; }
};

/// Hit/miss/fill counters for one cache level.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t DemandFills = 0;
  uint64_t PrefetchFills = 0;
  uint64_t Evictions = 0;
  /// Demand hits on blocks that were brought in by a prefetch and had not
  /// yet been touched by demand (each such hit is a prefetch that paid off).
  uint64_t UsefulPrefetches = 0;
  /// Prefetched blocks evicted before any demand touch (pure pollution).
  uint64_t WastedPrefetches = 0;

  uint64_t accesses() const { return Hits + Misses; }
  double missRate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(Misses) /
                     static_cast<double>(accesses());
  }
};

/// Stable metric enumeration: fixed, append-only order shared by every
/// serializer (see obs/Metrics.h for the contract).
template <typename CacheStatsT, typename Fn>
void visitCacheStatsMetrics(CacheStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"hits", "accesses", "demand hits at this level"},
        Stats.Hits);
  Visit(MetricDef{"misses", "accesses", "demand misses at this level"},
        Stats.Misses);
  Visit(MetricDef{"demand_fills", "fills", "lines filled by demand misses"},
        Stats.DemandFills);
  Visit(MetricDef{"prefetch_fills", "fills", "lines filled by prefetches"},
        Stats.PrefetchFills);
  Visit(MetricDef{"evictions", "lines", "valid lines replaced"},
        Stats.Evictions);
  Visit(MetricDef{"useful_prefetches", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.UsefulPrefetches);
  Visit(MetricDef{"wasted_prefetches", "prefetches",
                  "prefetched lines evicted before any demand touch"},
        Stats.WastedPrefetches);
}

/// One level of a set-associative, true-LRU, tag-only cache.
///
/// Lines carry a "prefetched, not yet demanded" bit so the statistics can
/// separate useful prefetches from pollution — the effect that makes the
/// paper's Seq-pref straw man lose on most benchmarks (Section 4.3).
/// See the file comment for the packed set-major line layout.
class Cache {
public:
  /// Classification detail reported by access(): whether the hit consumed
  /// a prefetched-untouched line, and which stream prefetched it.
  struct AccessInfo {
    bool PrefetchHit = false;
    uint32_t StreamTag = obs::NoStreamTag;
  };

  /// Classification detail reported by fill(): whether the victim was a
  /// prefetched line that no demand access ever touched, and — when it
  /// was — which stream prefetched it and where it lived (the block's
  /// base address, reconstructed from the victim's tag; pollution
  /// feedback for the prefetcher zoo's eviction hooks).
  struct EvictInfo {
    bool EvictedUntouchedPrefetch = false;
    uint32_t EvictedStreamTag = obs::NoStreamTag;
    Addr EvictedBlockAddr = 0;
  };

  explicit Cache(const CacheConfig &Config);

  /// Looks up \p Address without changing any state.
  bool contains(Addr Address) const {
    return findWay(setBase(Address), encodeTag(Address)) != NoWay;
  }

  /// Demand access: returns true on hit (and updates LRU + prefetch
  /// accounting).  On miss, no fill happens here — the hierarchy decides
  /// where fills go.  When \p Info is non-null it receives the prefetch
  /// classification detail for this access.
  bool access(Addr Address, AccessInfo *Info = nullptr) {
    const uint64_t Base = setBase(Address);
    const unsigned Way = findWay(Base, encodeTag(Address));
    if (Way == NoWay) {
      ++Stats.Misses;
      return false;
    }
    ++Stats.Hits;
    uint64_t &Recency = Lines[Base + Config.Associativity + Way];
    const bool Prefetched = (Recency & 1) != 0;
    Recency = ++UseClock << 1; // fresh stamp, prefetched bit consumed
    if (Prefetched) {
      ++Stats.UsefulPrefetches;
      if (Info) {
        Info->PrefetchHit = true;
        Info->StreamTag = StreamTags[Base / 2 + Way];
      }
    }
    return true;
  }

  /// Probe-and-touch for prefetch redundancy checks: on a hit this is
  /// exactly access() (hit counted, LRU refreshed, prefetched bit
  /// consumed); on a miss nothing changes — no miss is counted.  Fuses
  /// the hierarchy's former contains() + access() pair into one probe.
  bool touchIfPresent(Addr Address) {
    const uint64_t Base = setBase(Address);
    const unsigned Way = findWay(Base, encodeTag(Address));
    if (Way == NoWay)
      return false;
    ++Stats.Hits;
    uint64_t &Recency = Lines[Base + Config.Associativity + Way];
    if (Recency & 1)
      ++Stats.UsefulPrefetches;
    Recency = ++UseClock << 1; // fresh stamp, prefetched bit consumed
    return true;
  }

  /// Fills the block containing \p Address, evicting LRU if needed.
  /// \p IsPrefetch marks the line for useful/wasted prefetch accounting;
  /// \p StreamTag records which hot data stream issued the prefetch.
  /// Returns eviction classification detail for the victim line.
  EvictInfo fill(Addr Address, bool IsPrefetch,
                 uint32_t StreamTag = obs::NoStreamTag) {
    const uint64_t Base = setBase(Address);
    const Addr Tag = encodeTag(Address);
    const unsigned A = Config.Associativity;

    // One pass finds the resident way and the LRU victim together: the
    // first-wins argmin over the recency words is the victim policy
    // (invalid ways hold 0 and therefore win before any valid way, and
    // unique stamps make the shifted comparison order exact).
    unsigned Hit = NoWay;
    unsigned Victim = 0;
    uint64_t Oldest = Lines[Base + A];
    for (unsigned Way = 0; Way < A; ++Way) {
      if (Lines[Base + Way] == Tag)
        Hit = Way;
      const uint64_t Recency = Lines[Base + A + Way];
      const bool Older = Recency < Oldest;
      Oldest = Older ? Recency : Oldest;
      Victim = Older ? Way : Victim;
    }

    if (Hit != NoWay) {
      // Refilling a resident block just refreshes recency; it must not
      // re-arm the prefetch bit on a demand-touched line (nor clear it
      // on a still-untouched one).
      uint64_t &Recency = Lines[Base + A + Hit];
      Recency = (++UseClock << 1) | (Recency & 1);
      return EvictInfo();
    }

    EvictInfo Evicted;
    uint64_t &VictimRecency = Lines[Base + A + Victim];
    if (VictimRecency != 0) {
      ++Stats.Evictions;
      if (VictimRecency & 1) {
        ++Stats.WastedPrefetches;
        Evicted.EvictedUntouchedPrefetch = true;
        Evicted.EvictedStreamTag = StreamTags[Base / 2 + Victim];
        // Rebuild the victim's block address from its stored tag and the
        // set index (rare path: only untouched-prefetch evictions).
        const uint64_t Set = Base / (2 * A);
        const uint64_t VictimTag = Lines[Base + Victim] >> 1;
        const uint64_t VictimBlock = ShiftGeometry
                                         ? (VictimTag << SetShift) | Set
                                         : VictimTag * NumSets + Set;
        Evicted.EvictedBlockAddr = VictimBlock * Config.BlockBytes;
      }
    }

    Lines[Base + Victim] = Tag;
    VictimRecency = (++UseClock << 1) | (IsPrefetch ? 1 : 0);
    if (IsPrefetch) {
      StreamTags[Base / 2 + Victim] = StreamTag;
      ++Stats.PrefetchFills;
    } else {
      ++Stats.DemandFills;
    }
    return Evicted;
  }

  /// Drops all lines (used between benchmark configurations).
  void reset();

  const CacheConfig &config() const { return Config; }
  const CacheStats &stats() const { return Stats; }
  void clearStats() { Stats = CacheStats(); }

  /// Number of currently valid lines (for tests).
  uint64_t validLineCount() const;

private:
  static constexpr unsigned NoWay = ~0u;

  uint64_t blockNumber(Addr Address) const {
    return ShiftGeometry ? Address >> BlockShift : Address / Config.BlockBytes;
  }
  /// Index of a set's first tag slot in Lines (set * 2 * Associativity).
  uint64_t setBase(Addr Address) const {
    const uint64_t Block = blockNumber(Address);
    return (ShiftGeometry ? Block & SetMask : Block % NumSets) *
           (2 * Config.Associativity);
  }
  /// The stored form of a tag: (tag << 1) | 1.  Bit 0 doubles as the
  /// valid bit — an invalid slot holds 0, which no encoded tag equals —
  /// so the way scan compares one word per way.  Tags are block-number
  /// >> set-bits, leaving bit 63 free for the shift.
  Addr encodeTag(Addr Address) const {
    const uint64_t Block = blockNumber(Address);
    return ((ShiftGeometry ? Block >> SetShift : Block / NumSets) << 1) | 1;
  }

  /// Way index within the set at \p Base holding encoded tag \p Tag, or
  /// NoWay.
  unsigned findWay(uint64_t Base, Addr Tag) const {
    for (unsigned Way = 0; Way < Config.Associativity; ++Way)
      if (Lines[Base + Way] == Tag)
        return Way;
    return NoWay;
  }

  CacheConfig Config;
  uint64_t NumSets;
  uint64_t UseClock = 0;

  /// Shift/mask geometry, valid when BlockBytes and NumSets are both
  /// powers of two.
  bool ShiftGeometry = false;
  unsigned BlockShift = 0;
  unsigned SetShift = 0;
  uint64_t SetMask = 0;

  /// Packed per-set metadata, 2 * Associativity words per set: the set's
  /// encoded tags, then its recency words (see file comment).
  std::vector<uint64_t> Lines;
  /// Stream attribution per line (set * Associativity + way), read only
  /// on prefetch classification events.
  std::vector<uint32_t> StreamTags;

  CacheStats Stats;
};

} // namespace memsim
} // namespace hds

#endif // HDS_MEMSIM_CACHE_H
