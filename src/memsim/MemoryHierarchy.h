//===- memsim/MemoryHierarchy.h - Two-level hierarchy + prefetch -*- C++ -*-==//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-accounting model of the paper's evaluation machine: L1D + L2 +
/// main memory, with an in-flight prefetch queue so that prefetches overlap
/// with subsequent computation instead of completing instantaneously.
///
/// This is the substitute for the paper's 550 MHz Pentium III (Section 4.1):
/// reproduction of Figure 12 needs relative execution times, which are
/// driven by hit/miss composition, prefetch timeliness, and pollution —
/// exactly what this model captures.  The `prefetchT0` entry point mirrors
/// the Pentium III `prefetcht0` instruction the paper uses: it fetches into
/// both levels of the cache hierarchy.
///
/// All simulated cycles live in an obs::CycleAccount: the clock and the
/// per-phase attribution (pure compute, demand stall, check, profiling,
/// matching, prefetch issue, analysis) advance together, so Figure-11
/// overhead breakdowns are read straight off the account.  Prefetches
/// carry hot-data-stream tags and every effectiveness classification
/// event (useful / late / redundant / dropped / unused-evicted) is
/// attributed to its stream (obs/PrefetchStats.h).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_MEMSIM_MEMORYHIERARCHY_H
#define HDS_MEMSIM_MEMORYHIERARCHY_H

#include "memsim/Cache.h"
#include "obs/CycleAccount.h"
#include "obs/PrefetchStats.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace memsim {

/// Access latencies in cycles.  Defaults approximate the paper's era:
/// single-cycle L1, 14-cycle L2, 100-cycle memory.
struct LatencyConfig {
  unsigned L1HitCycles = 1;
  unsigned L2HitCycles = 14;
  unsigned MemoryCycles = 100;
  /// Cost of issuing one prefetch instruction (pipeline slot, not stall).
  unsigned PrefetchIssueCycles = 1;
  /// Maximum outstanding prefetches; extra issues are dropped, matching
  /// limited miss-status-holding-register style hardware.
  unsigned MaxInFlightPrefetches = 24;
};

/// Aggregate accounting snapshot for one simulation run, as returned by
/// stats().  The stall totals are views of the cycle account (phases
/// DemandStall + PartialHitStall); the event counters accumulate live.
struct HierarchyStats {
  uint64_t DemandAccesses = 0;
  uint64_t StallCycles = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t PrefetchesDroppedQueueFull = 0;
  uint64_t PrefetchesRedundant = 0; // target already cached or in flight
  /// Demand accesses that found their block still in flight and waited for
  /// the remainder of its latency (partially hidden misses).
  uint64_t PartialHits = 0;
  uint64_t PartialHitStallCycles = 0;
  /// Demand hits on prefetched-untouched lines at either level (the
  /// "useful" prefetch-effectiveness class).
  uint64_t PrefetchesUseful = 0;
  /// Prefetched lines evicted from L1 before any demand touch (the
  /// "unused-evicted" class).
  uint64_t PrefetchesUnusedEvicted = 0;
};

/// Stable metric enumeration: fixed, append-only order shared by every
/// serializer (see obs/Metrics.h for the contract).
template <typename HierarchyStatsT, typename Fn>
void visitHierarchyStatsMetrics(HierarchyStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"demand_accesses", "accesses",
                  "demand loads/stores the hierarchy served"},
        Stats.DemandAccesses);
  Visit(MetricDef{"stall_cycles", "cycles",
                  "demand-miss stall cycles (full and partial)"},
        Stats.StallCycles);
  Visit(MetricDef{"prefetches_issued", "prefetches",
                  "prefetch requests issued"},
        Stats.PrefetchesIssued);
  Visit(MetricDef{"prefetches_dropped_queue_full", "prefetches",
                  "issues dropped because the in-flight queue was full"},
        Stats.PrefetchesDroppedQueueFull);
  Visit(MetricDef{"prefetches_redundant", "prefetches",
                  "target already cached or in flight at issue"},
        Stats.PrefetchesRedundant);
  Visit(MetricDef{"partial_hits", "accesses",
                  "demand accesses that waited on an in-flight prefetch"},
        Stats.PartialHits);
  Visit(MetricDef{"partial_hit_stall_cycles", "cycles",
                  "stall spent waiting out in-flight prefetch tails"},
        Stats.PartialHitStallCycles);
  Visit(MetricDef{"prefetches_useful", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.PrefetchesUseful);
  Visit(MetricDef{"prefetches_unused_evicted", "prefetches",
                  "prefetched lines evicted from L1 before any use"},
        Stats.PrefetchesUnusedEvicted);
}

class MemoryHierarchy;

/// Observer of prefetch lifecycle events, for engines that react to what
/// their (or their rivals') prefetches achieved — the prefetcher zoo's
/// fill-chaining and the dueling selector's scoring (src/prefetch/).
///
/// Callbacks fire synchronously at the classification points of the
/// simulation, so they see a consistent machine state; all of them sit
/// on rare paths (prefetch hits, partial hits, pollution evictions,
/// completed fills), never on the pure-hit fast path.  Only
/// onPrefetchFill may issue follow-up prefetches — it is delivered after
/// the in-flight queue has been compacted; the others observe only.
class PrefetchListener {
public:
  virtual ~PrefetchListener() = default;

  /// A prefetched block finished filling (tag as passed to prefetchT0).
  virtual void onPrefetchFill(Addr BlockAddr, uint32_t StreamTag,
                              MemoryHierarchy &Hierarchy) = 0;
  /// A demand access hit a prefetched-untouched line (the "useful"
  /// class); \p Address is the demand address.
  virtual void onPrefetchUseful(Addr Address, uint32_t StreamTag) = 0;
  /// A demand access stalled on a block still in flight (the "late"
  /// class); \p Address is the demand address.
  virtual void onPrefetchLate(Addr Address, uint32_t StreamTag) = 0;
  /// A prefetched line was evicted from L1 untouched (pollution).
  virtual void onPrefetchEvicted(Addr BlockAddr, uint32_t StreamTag) = 0;
};

/// Two-level hierarchy with a global cycle clock.
///
/// The clock advances for (a) explicit compute via tick(), (b) access
/// latency of every demand load/store, and (c) prefetch issue slots.
/// Prefetched blocks become visible only once their latency has elapsed,
/// so a prefetch issued immediately before its use hides almost nothing
/// while one issued a stream ahead hides everything — the timeliness
/// property the paper's stream-based scheme relies on (Section 1).
class MemoryHierarchy {
public:
  MemoryHierarchy(const CacheConfig &L1Config = CacheConfig::pentiumIIIL1(),
                  const CacheConfig &L2Config = CacheConfig::pentiumIIIL2(),
                  const LatencyConfig &Latency = LatencyConfig());

  /// Advances the clock by \p Cycles, attributed to \p Phase (pure
  /// compute by default; the runtime passes DynamicCheck, Profiling,
  /// PrefixMatch, or Analysis for its overhead charges).
  void tick(uint64_t Cycles,
            obs::CyclePhase Phase = obs::CyclePhase::PureCompute) {
    Account.charge(Cycles, Phase);
    drainDuePrefetches();
  }

  /// Demand access (load or store — the model treats them alike, as the
  /// paper's data reference definition does).  Returns the latency in
  /// cycles charged for this access; the clock has already advanced.
  ///
  /// Lives in the header: this is the per-access hot loop, and the call
  /// runs tens of millions of times per matrix cell (the tree builds
  /// static libraries without LTO, so out-of-line would cost a call and
  /// forgo inlining into Runtime::access).
  uint64_t access(Addr Address) {
    drainDuePrefetches();
    ++Stats.DemandAccesses;

    // L1 hit: single-cycle, no stall.  A hit on a prefetched-untouched
    // line is the prefetch paying off in full — the "useful" class.
    Cache::AccessInfo L1Info;
    if (L1.access(Address, &L1Info)) {
      if (L1Info.PrefetchHit) {
        ++Stats.PrefetchesUseful;
        ++bucket(L1Info.StreamTag).Useful;
        if (Listener)
          Listener->onPrefetchUseful(Address, L1Info.StreamTag);
      }
      charge(Latency.L1HitCycles, 0);
      return Latency.L1HitCycles;
    }

    // The block may still be on its way in: wait out the remaining
    // latency.  This is how an early-but-not-early-enough prefetch still
    // hides part of a miss — the "late" class.
    if (size_t P = findInFlight(Address); P != NotInFlight) {
      const uint64_t Remaining = InFlightReady[P] - Account.total();
      ++Stats.PartialHits;
      ++bucket(inFlightTag(P)).Late;
      if (Listener)
        Listener->onPrefetchLate(Address, inFlightTag(P));
      charge(Remaining, Remaining, /*PartialHit=*/true);
      drainDuePrefetches(); // fills this block (and any other due ones)
      // The arriving line counts as a useful prefetch in the cache-level
      // stats the moment demand touches it; hierarchy-level
      // classification already recorded the event as late.
      L1.access(Address);
      charge(Latency.L1HitCycles, 0);
      return Remaining + Latency.L1HitCycles;
    }

    // L2 hit: fill L1 and pay the L2 latency.  A prefetched-untouched L2
    // line is likewise a useful prefetch (it halved the miss latency).
    Cache::AccessInfo L2Info;
    if (L2.access(Address, &L2Info)) {
      if (L2Info.PrefetchHit) {
        ++Stats.PrefetchesUseful;
        ++bucket(L2Info.StreamTag).Useful;
        if (Listener)
          Listener->onPrefetchUseful(Address, L2Info.StreamTag);
      }
      const Cache::EvictInfo Evicted = L1.fill(Address, /*IsPrefetch=*/false);
      if (Evicted.EvictedUntouchedPrefetch)
        recordEviction(Evicted);
      charge(Latency.L2HitCycles, Latency.L2HitCycles - Latency.L1HitCycles);
      return Latency.L2HitCycles;
    }

    // Memory: fill both levels.
    L2.fill(Address, /*IsPrefetch=*/false);
    const Cache::EvictInfo Evicted = L1.fill(Address, /*IsPrefetch=*/false);
    if (Evicted.EvictedUntouchedPrefetch)
      recordEviction(Evicted);
    charge(Latency.MemoryCycles, Latency.MemoryCycles - Latency.L1HitCycles);
    return Latency.MemoryCycles;
  }

  /// Prefetch into both cache levels (`prefetcht0`).  Non-binding and
  /// non-blocking: the fill completes after the block's latency.
  /// Software prefetches charge one issue slot now; hardware-initiated
  /// prefetches (stride/Markov engines) pass \p ChargeIssueSlot = false.
  /// \p StreamTag attributes the prefetch (and every later classification
  /// event on its block) to the hot data stream that requested it.
  void prefetchT0(Addr Address, bool ChargeIssueSlot = true,
                  uint32_t StreamTag = obs::NoStreamTag);

  /// Completes every in-flight prefetch and clears both caches and the
  /// cycle account (fresh machine for the next benchmark configuration).
  void reset();

  uint64_t now() const { return Account.total(); }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }

  /// The attributed cycle account behind the clock.
  const obs::CycleAccount &account() const { return Account; }

  /// Installs (or clears, with null) the prefetch lifecycle observer.
  /// Not owned; must outlive the hierarchy or be cleared first.
  void setListener(PrefetchListener *L) { Listener = L; }

  /// Accounting snapshot: live event counters plus the stall totals read
  /// from the cycle account.
  HierarchyStats stats() const {
    HierarchyStats Snapshot = Stats;
    Snapshot.StallCycles = Account.stallCycles();
    Snapshot.PartialHitStallCycles =
        Account.phase(obs::CyclePhase::PartialHitStall);
    return Snapshot;
  }

  /// Clears the event counters and per-stream classification buckets.
  /// Stall attribution lives in the cycle account and clears with
  /// reset().
  void clearStats();

  /// Per-stream classification buckets, indexed by stream tag.  Streams
  /// that never produced an event may be absent (vector shorter than the
  /// tag).
  const std::vector<obs::PrefetchClassCounts> &streamClasses() const {
    return StreamClasses;
  }
  /// Classification bucket for untagged prefetches (stride/Markov
  /// hardware engines, tests).
  const obs::PrefetchClassCounts &untaggedClasses() const { return Untagged; }

  /// Number of prefetches currently in flight (for tests).
  unsigned inFlightCount() const {
    return static_cast<unsigned>(InFlightReady.size());
  }

private:
  uint64_t blockNumber(Addr Address) const {
    return Address / L1.config().BlockBytes;
  }

  /// Charges one demand access: the stalled portion is attributed to
  /// DemandStall (or PartialHitStall), the remainder to PureCompute.
  void charge(uint64_t LatencyCycles, uint64_t StallPortion,
              bool PartialHit = false) {
    Account.charge(LatencyCycles - StallPortion,
                   obs::CyclePhase::PureCompute);
    Account.charge(StallPortion, PartialHit
                                     ? obs::CyclePhase::PartialHitStall
                                     : obs::CyclePhase::DemandStall);
  }

  /// Books one untouched-prefetch eviction: counters, per-stream bucket,
  /// and the listener's pollution feedback.
  void recordEviction(const Cache::EvictInfo &Evicted) {
    ++Stats.PrefetchesUnusedEvicted;
    ++bucket(Evicted.EvictedStreamTag).UnusedEvicted;
    if (Listener)
      Listener->onPrefetchEvicted(Evicted.EvictedBlockAddr,
                                  Evicted.EvictedStreamTag);
  }

  /// Classification bucket for \p StreamTag (grown on demand).
  obs::PrefetchClassCounts &bucket(uint32_t StreamTag) {
    if (StreamTag == obs::NoStreamTag)
      return Untagged;
    if (StreamTag >= StreamClasses.size())
      StreamClasses.resize(StreamTag + 1);
    return StreamClasses[StreamTag];
  }

  /// Moves completed prefetches into the caches.  The fast path is a
  /// single compare against the cached earliest ready cycle — with no
  /// prefetch due (the common case on every tick and access) nothing is
  /// scanned.  NextReadyCycle is always the minimum ReadyCycle over the
  /// in-flight queue, or ~0 when the queue is empty.
  void drainDuePrefetches() {
    if (Account.total() < NextReadyCycle)
      return;
    drainDuePrefetchesSlow();
  }
  void drainDuePrefetchesSlow();

  static constexpr size_t NotInFlight = ~size_t{0};

  /// Index of the in-flight entry covering \p Address, or NotInFlight.
  size_t findInFlight(Addr Address) const {
    if (InFlightBlock.empty())
      return NotInFlight;
    const uint64_t Block = blockNumber(Address);
    for (size_t I = 0; I < InFlightBlock.size(); ++I)
      if (InFlightBlock[I] == Block)
        return I;
    return NotInFlight;
  }

  uint32_t inFlightTag(size_t I) const {
    return static_cast<uint32_t>(InFlightMeta[I] >> 1);
  }
  bool inFlightFillsL2(size_t I) const { return (InFlightMeta[I] & 1) != 0; }

  Cache L1;
  Cache L2;
  LatencyConfig Latency;
  obs::CycleAccount Account;
  /// The in-flight prefetch queue, struct-of-arrays: the drain scan reads
  /// only ready cycles and the partial-hit probe only block numbers, and
  /// both run millions of times per prefetching-mode cell — parallel
  /// arrays keep each scan inside a couple of host cache lines instead of
  /// striding through 24-byte records.  Meta packs (StreamTag << 1) |
  /// FillL2 (memory-sourced prefetches fill both levels).
  std::vector<uint64_t> InFlightReady;
  std::vector<uint64_t> InFlightBlock;
  std::vector<uint64_t> InFlightMeta;
  /// min ready cycle over the queue; ~0 when empty (drainDuePrefetches).
  uint64_t NextReadyCycle = ~uint64_t{0};
  PrefetchListener *Listener = nullptr;
  /// Completed fills awaiting listener delivery, staged so callbacks run
  /// only after the queue compaction (scratch, empty between drains).
  std::vector<uint64_t> PendingFillBlock;
  std::vector<uint64_t> PendingFillTag;
  HierarchyStats Stats;
  std::vector<obs::PrefetchClassCounts> StreamClasses;
  obs::PrefetchClassCounts Untagged;
};

} // namespace memsim
} // namespace hds

#endif // HDS_MEMSIM_MEMORYHIERARCHY_H
