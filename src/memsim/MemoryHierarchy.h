//===- memsim/MemoryHierarchy.h - Two-level hierarchy + prefetch -*- C++ -*-==//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-accounting model of the paper's evaluation machine: L1D + L2 +
/// main memory, with an in-flight prefetch queue so that prefetches overlap
/// with subsequent computation instead of completing instantaneously.
///
/// This is the substitute for the paper's 550 MHz Pentium III (Section 4.1):
/// reproduction of Figure 12 needs relative execution times, which are
/// driven by hit/miss composition, prefetch timeliness, and pollution —
/// exactly what this model captures.  The `prefetchT0` entry point mirrors
/// the Pentium III `prefetcht0` instruction the paper uses: it fetches into
/// both levels of the cache hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_MEMSIM_MEMORYHIERARCHY_H
#define HDS_MEMSIM_MEMORYHIERARCHY_H

#include "memsim/Cache.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace memsim {

/// Access latencies in cycles.  Defaults approximate the paper's era:
/// single-cycle L1, 14-cycle L2, 100-cycle memory.
struct LatencyConfig {
  unsigned L1HitCycles = 1;
  unsigned L2HitCycles = 14;
  unsigned MemoryCycles = 100;
  /// Cost of issuing one prefetch instruction (pipeline slot, not stall).
  unsigned PrefetchIssueCycles = 1;
  /// Maximum outstanding prefetches; extra issues are dropped, matching
  /// limited miss-status-holding-register style hardware.
  unsigned MaxInFlightPrefetches = 24;
};

/// Aggregate cycle accounting for one simulation run.
struct HierarchyStats {
  uint64_t DemandAccesses = 0;
  uint64_t StallCycles = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t PrefetchesDroppedQueueFull = 0;
  uint64_t PrefetchesRedundant = 0; // target already cached or in flight
  /// Demand accesses that found their block still in flight and waited for
  /// the remainder of its latency (partially hidden misses).
  uint64_t PartialHits = 0;
  uint64_t PartialHitStallCycles = 0;
};

/// Stable serialization accessor: fixed, append-only field order shared
/// by every serializer (see core/RunStats.h for the contract).
template <typename HierarchyStatsT, typename Fn>
void visitHierarchyStatsCounters(HierarchyStatsT &&Stats, Fn &&Visit) {
  Visit(Stats.DemandAccesses);
  Visit(Stats.StallCycles);
  Visit(Stats.PrefetchesIssued);
  Visit(Stats.PrefetchesDroppedQueueFull);
  Visit(Stats.PrefetchesRedundant);
  Visit(Stats.PartialHits);
  Visit(Stats.PartialHitStallCycles);
}

/// Two-level hierarchy with a global cycle clock.
///
/// The clock advances for (a) explicit compute via tick(), (b) access
/// latency of every demand load/store, and (c) prefetch issue slots.
/// Prefetched blocks become visible only once their latency has elapsed,
/// so a prefetch issued immediately before its use hides almost nothing
/// while one issued a stream ahead hides everything — the timeliness
/// property the paper's stream-based scheme relies on (Section 1).
class MemoryHierarchy {
public:
  MemoryHierarchy(const CacheConfig &L1Config = CacheConfig::pentiumIIIL1(),
                  const CacheConfig &L2Config = CacheConfig::pentiumIIIL2(),
                  const LatencyConfig &Latency = LatencyConfig());

  /// Advances the clock by \p Cycles of computation.
  void tick(uint64_t Cycles) {
    charge(Cycles, 0);
    drainDuePrefetches();
  }

  /// Demand access (load or store — the model treats them alike, as the
  /// paper's data reference definition does).  Returns the latency in
  /// cycles charged for this access; the clock has already advanced.
  uint64_t access(Addr Address);

  /// Prefetch into both cache levels (`prefetcht0`).  Non-binding and
  /// non-blocking: the fill completes after the block's latency.
  /// Software prefetches charge one issue slot now; hardware-initiated
  /// prefetches (stride/Markov engines) pass \p ChargeIssueSlot = false.
  void prefetchT0(Addr Address, bool ChargeIssueSlot = true);

  /// Completes every in-flight prefetch and clears both caches and the
  /// clock (fresh machine for the next benchmark configuration).
  void reset();

  uint64_t now() const { return Now; }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const HierarchyStats &stats() const { return Stats; }
  void clearStats();

  /// Number of prefetches currently in flight (for tests).
  unsigned inFlightCount() const {
    return static_cast<unsigned>(InFlight.size());
  }

private:
  struct InFlightPrefetch {
    uint64_t BlockNumber;
    uint64_t ReadyCycle;
    bool FillL2; // memory-sourced prefetches fill both levels
  };

  uint64_t blockNumber(Addr Address) const {
    return Address / L1.config().BlockBytes;
  }

  /// The designated cycle-accounting primitive (hds_lint rule C1): every
  /// cycle charged anywhere in the simulator flows through here, so the
  /// clock and the stall attribution can never drift apart.  \p
  /// StallPortion of \p LatencyCycles counts as demand stall; partial-hit
  /// stalls are additionally attributed to the prefetch-timeliness stat.
  void charge(uint64_t LatencyCycles, uint64_t StallPortion,
              bool PartialHit = false) {
    Now += LatencyCycles;              // hds-lint: cycles-ok(designated accounting primitive)
    Stats.StallCycles += StallPortion; // hds-lint: cycles-ok(designated accounting primitive)
    if (PartialHit)
      Stats.PartialHitStallCycles += StallPortion; // hds-lint: cycles-ok(designated accounting primitive)
  }

  /// Moves completed prefetches into the caches.
  void drainDuePrefetches();

  /// Returns the in-flight entry covering \p Address, or nullptr.
  InFlightPrefetch *findInFlight(Addr Address);

  Cache L1;
  Cache L2;
  LatencyConfig Latency;
  uint64_t Now = 0;
  std::vector<InFlightPrefetch> InFlight;
  HierarchyStats Stats;
};

} // namespace memsim
} // namespace hds

#endif // HDS_MEMSIM_MEMORYHIERARCHY_H
