//===- memsim/MemoryHierarchy.h - Two-level hierarchy + prefetch -*- C++ -*-==//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-accounting model of the paper's evaluation machine: L1D + L2 +
/// main memory, with an in-flight prefetch queue so that prefetches overlap
/// with subsequent computation instead of completing instantaneously.
///
/// This is the substitute for the paper's 550 MHz Pentium III (Section 4.1):
/// reproduction of Figure 12 needs relative execution times, which are
/// driven by hit/miss composition, prefetch timeliness, and pollution —
/// exactly what this model captures.  The `prefetchT0` entry point mirrors
/// the Pentium III `prefetcht0` instruction the paper uses: it fetches into
/// both levels of the cache hierarchy.
///
/// All simulated cycles live in an obs::CycleAccount: the clock and the
/// per-phase attribution (pure compute, demand stall, check, profiling,
/// matching, prefetch issue, analysis) advance together, so Figure-11
/// overhead breakdowns are read straight off the account.  Prefetches
/// carry hot-data-stream tags and every effectiveness classification
/// event (useful / late / redundant / dropped / unused-evicted) is
/// attributed to its stream (obs/PrefetchStats.h).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_MEMSIM_MEMORYHIERARCHY_H
#define HDS_MEMSIM_MEMORYHIERARCHY_H

#include "memsim/Cache.h"
#include "obs/CycleAccount.h"
#include "obs/PrefetchStats.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace memsim {

/// Access latencies in cycles.  Defaults approximate the paper's era:
/// single-cycle L1, 14-cycle L2, 100-cycle memory.
struct LatencyConfig {
  unsigned L1HitCycles = 1;
  unsigned L2HitCycles = 14;
  unsigned MemoryCycles = 100;
  /// Cost of issuing one prefetch instruction (pipeline slot, not stall).
  unsigned PrefetchIssueCycles = 1;
  /// Maximum outstanding prefetches; extra issues are dropped, matching
  /// limited miss-status-holding-register style hardware.
  unsigned MaxInFlightPrefetches = 24;
};

/// Aggregate accounting snapshot for one simulation run, as returned by
/// stats().  The stall totals are views of the cycle account (phases
/// DemandStall + PartialHitStall); the event counters accumulate live.
struct HierarchyStats {
  uint64_t DemandAccesses = 0;
  uint64_t StallCycles = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t PrefetchesDroppedQueueFull = 0;
  uint64_t PrefetchesRedundant = 0; // target already cached or in flight
  /// Demand accesses that found their block still in flight and waited for
  /// the remainder of its latency (partially hidden misses).
  uint64_t PartialHits = 0;
  uint64_t PartialHitStallCycles = 0;
  /// Demand hits on prefetched-untouched lines at either level (the
  /// "useful" prefetch-effectiveness class).
  uint64_t PrefetchesUseful = 0;
  /// Prefetched lines evicted from L1 before any demand touch (the
  /// "unused-evicted" class).
  uint64_t PrefetchesUnusedEvicted = 0;
};

/// Stable metric enumeration: fixed, append-only order shared by every
/// serializer (see obs/Metrics.h for the contract).
template <typename HierarchyStatsT, typename Fn>
void visitHierarchyStatsMetrics(HierarchyStatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"demand_accesses", "accesses",
                  "demand loads/stores the hierarchy served"},
        Stats.DemandAccesses);
  Visit(MetricDef{"stall_cycles", "cycles",
                  "demand-miss stall cycles (full and partial)"},
        Stats.StallCycles);
  Visit(MetricDef{"prefetches_issued", "prefetches",
                  "prefetch requests issued"},
        Stats.PrefetchesIssued);
  Visit(MetricDef{"prefetches_dropped_queue_full", "prefetches",
                  "issues dropped because the in-flight queue was full"},
        Stats.PrefetchesDroppedQueueFull);
  Visit(MetricDef{"prefetches_redundant", "prefetches",
                  "target already cached or in flight at issue"},
        Stats.PrefetchesRedundant);
  Visit(MetricDef{"partial_hits", "accesses",
                  "demand accesses that waited on an in-flight prefetch"},
        Stats.PartialHits);
  Visit(MetricDef{"partial_hit_stall_cycles", "cycles",
                  "stall spent waiting out in-flight prefetch tails"},
        Stats.PartialHitStallCycles);
  Visit(MetricDef{"prefetches_useful", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.PrefetchesUseful);
  Visit(MetricDef{"prefetches_unused_evicted", "prefetches",
                  "prefetched lines evicted from L1 before any use"},
        Stats.PrefetchesUnusedEvicted);
}

/// Two-level hierarchy with a global cycle clock.
///
/// The clock advances for (a) explicit compute via tick(), (b) access
/// latency of every demand load/store, and (c) prefetch issue slots.
/// Prefetched blocks become visible only once their latency has elapsed,
/// so a prefetch issued immediately before its use hides almost nothing
/// while one issued a stream ahead hides everything — the timeliness
/// property the paper's stream-based scheme relies on (Section 1).
class MemoryHierarchy {
public:
  MemoryHierarchy(const CacheConfig &L1Config = CacheConfig::pentiumIIIL1(),
                  const CacheConfig &L2Config = CacheConfig::pentiumIIIL2(),
                  const LatencyConfig &Latency = LatencyConfig());

  /// Advances the clock by \p Cycles, attributed to \p Phase (pure
  /// compute by default; the runtime passes DynamicCheck, Profiling,
  /// PrefixMatch, or Analysis for its overhead charges).
  void tick(uint64_t Cycles,
            obs::CyclePhase Phase = obs::CyclePhase::PureCompute) {
    Account.charge(Cycles, Phase);
    drainDuePrefetches();
  }

  /// Demand access (load or store — the model treats them alike, as the
  /// paper's data reference definition does).  Returns the latency in
  /// cycles charged for this access; the clock has already advanced.
  uint64_t access(Addr Address);

  /// Prefetch into both cache levels (`prefetcht0`).  Non-binding and
  /// non-blocking: the fill completes after the block's latency.
  /// Software prefetches charge one issue slot now; hardware-initiated
  /// prefetches (stride/Markov engines) pass \p ChargeIssueSlot = false.
  /// \p StreamTag attributes the prefetch (and every later classification
  /// event on its block) to the hot data stream that requested it.
  void prefetchT0(Addr Address, bool ChargeIssueSlot = true,
                  uint32_t StreamTag = obs::NoStreamTag);

  /// Completes every in-flight prefetch and clears both caches and the
  /// cycle account (fresh machine for the next benchmark configuration).
  void reset();

  uint64_t now() const { return Account.total(); }
  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }

  /// The attributed cycle account behind the clock.
  const obs::CycleAccount &account() const { return Account; }

  /// Accounting snapshot: live event counters plus the stall totals read
  /// from the cycle account.
  HierarchyStats stats() const {
    HierarchyStats Snapshot = Stats;
    Snapshot.StallCycles = Account.stallCycles();
    Snapshot.PartialHitStallCycles =
        Account.phase(obs::CyclePhase::PartialHitStall);
    return Snapshot;
  }

  /// Clears the event counters and per-stream classification buckets.
  /// Stall attribution lives in the cycle account and clears with
  /// reset().
  void clearStats();

  /// Per-stream classification buckets, indexed by stream tag.  Streams
  /// that never produced an event may be absent (vector shorter than the
  /// tag).
  const std::vector<obs::PrefetchClassCounts> &streamClasses() const {
    return StreamClasses;
  }
  /// Classification bucket for untagged prefetches (stride/Markov
  /// hardware engines, tests).
  const obs::PrefetchClassCounts &untaggedClasses() const { return Untagged; }

  /// Number of prefetches currently in flight (for tests).
  unsigned inFlightCount() const {
    return static_cast<unsigned>(InFlight.size());
  }

private:
  struct InFlightPrefetch {
    uint64_t BlockNumber;
    uint64_t ReadyCycle;
    bool FillL2; // memory-sourced prefetches fill both levels
    uint32_t StreamTag;
  };

  uint64_t blockNumber(Addr Address) const {
    return Address / L1.config().BlockBytes;
  }

  /// Charges one demand access: the stalled portion is attributed to
  /// DemandStall (or PartialHitStall), the remainder to PureCompute.
  void charge(uint64_t LatencyCycles, uint64_t StallPortion,
              bool PartialHit = false) {
    Account.charge(LatencyCycles - StallPortion,
                   obs::CyclePhase::PureCompute);
    Account.charge(StallPortion, PartialHit
                                     ? obs::CyclePhase::PartialHitStall
                                     : obs::CyclePhase::DemandStall);
  }

  /// Classification bucket for \p StreamTag (grown on demand).
  obs::PrefetchClassCounts &bucket(uint32_t StreamTag) {
    if (StreamTag == obs::NoStreamTag)
      return Untagged;
    if (StreamTag >= StreamClasses.size())
      StreamClasses.resize(StreamTag + 1);
    return StreamClasses[StreamTag];
  }

  /// Moves completed prefetches into the caches.
  void drainDuePrefetches();

  /// Returns the in-flight entry covering \p Address, or nullptr.
  InFlightPrefetch *findInFlight(Addr Address);

  Cache L1;
  Cache L2;
  LatencyConfig Latency;
  obs::CycleAccount Account;
  std::vector<InFlightPrefetch> InFlight;
  HierarchyStats Stats;
  std::vector<obs::PrefetchClassCounts> StreamClasses;
  obs::PrefetchClassCounts Untagged;
};

} // namespace memsim
} // namespace hds

#endif // HDS_MEMSIM_MEMORYHIERARCHY_H
