//===- analysis/DataRef.h - Data references and interning ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A data reference is a load or store of a particular address, represented
/// as a pair (r.pc, r.addr) — Section 2.1 of the paper.  The profiler
/// interns references into dense ids so the Sequitur grammar and the DFSM
/// construction operate on small integers.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_DATAREF_H
#define HDS_ANALYSIS_DATAREF_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hds {
namespace analysis {

/// A load or store of address \p Addr issued by the instruction at \p Pc.
struct DataRef {
  uint64_t Pc = 0;
  uint64_t Addr = 0;

  friend bool operator==(const DataRef &A, const DataRef &B) {
    return A.Pc == B.Pc && A.Addr == B.Addr;
  }
};

struct DataRefHash {
  size_t operator()(const DataRef &Ref) const {
    uint64_t H = Ref.Addr * 0x100000001B3ULL;
    H ^= Ref.Pc + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// Dense id assigned to an interned DataRef.
using RefId = uint32_t;

/// Sentinel for "no such reference".
inline constexpr RefId InvalidRefId = ~RefId{0};

/// Bidirectional interning table: (pc, addr) <-> dense RefId.
///
/// Sequitur terminals, hot data stream elements, and DFSM symbols are all
/// RefIds; this table is the single place that maps them back to concrete
/// program points and addresses when injecting checks and prefetches.
class DataRefTable {
public:
  /// Returns the id for \p Ref, creating one on first sight.
  RefId intern(const DataRef &Ref) {
    auto [It, Inserted] = Index.try_emplace(Ref, RefId(Refs.size()));
    if (Inserted)
      Refs.push_back(Ref);
    return It->second;
  }

  /// Returns the id for \p Ref if it was interned before, or InvalidRefId.
  RefId lookup(const DataRef &Ref) const {
    auto It = Index.find(Ref);
    return It == Index.end() ? InvalidRefId : It->second;
  }

  const DataRef &refOf(RefId Id) const {
    assert(Id < Refs.size() && "unknown RefId");
    return Refs[Id];
  }

  size_t size() const { return Refs.size(); }

  void clear() {
    Index.clear();
    Refs.clear();
  }

private:
  std::unordered_map<DataRef, RefId, DataRefHash> Index;
  std::vector<DataRef> Refs;
};

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_DATAREF_H
