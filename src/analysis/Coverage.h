//===- analysis/Coverage.h - Trace coverage of stream sets -----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures how much of a trace a set of hot data streams accounts for —
/// the "hot data streams ... account for around 90% of program references"
/// property ([8, 28], cited in Section 1) and the 80% figure of the
/// worked example in Figure 6.  Used by the ablation bench to compare the
/// fast and precise analyzers on equal footing.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_COVERAGE_H
#define HDS_ANALYSIS_COVERAGE_H

#include "analysis/HotDataStream.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace analysis {

/// Fraction of \p Trace positions covered by at least one occurrence of any
/// stream in \p Streams.  Occurrences may overlap each other; every covered
/// position counts once.  Returns 0 for an empty trace.
double traceCoverage(const std::vector<uint32_t> &Trace,
                     const std::vector<HotDataStream> &Streams);

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_COVERAGE_H
