//===- analysis/SubpathAnalyzer.h - Grammar hot-subpath analysis -*- C++ -*-=//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Larus-style hot-subpath detector operating on the Sequitur grammar.
///
/// The paper (§2.3): "Larus describes an algorithm for finding a set of
/// hot data streams from a Sequitur grammar [21]; we use a faster, less
/// precise algorithm that relies more heavily on the ability of Sequitur
/// to infer hierarchical structure."  The fast Figure-5 analysis can only
/// report streams that happen to be the exact expansion of one grammar
/// rule; recurring sequences that *cross* rule boundaries (very common
/// when burst boundaries fragment the repeating unit) are invisible to
/// it.  This analyzer recovers them, in the spirit of Larus' Whole
/// Program Paths hot-subpath algorithm:
///
///   * every substring of the trace of length <= maxLen either lies
///     entirely inside one grammar item's expansion, or crosses an item
///     boundary of exactly one rule occurrence;
///   * so each rule R "introduces" the boundary-crossing windows of its
///     right-hand side, and each such window occurs (at least) uses(R)
///     times in the whole trace — with uses(R) computed exactly as in
///     the Figure-5 pass;
///   * enumerating those windows over a boundary-compressed image of
///     each right-hand side (long children contribute only their first
///     and last maxLen-1 symbols around a window-blocking gap) counts
///     every substring in time O(grammar size * maxLen^2) instead of
///     O(trace length * maxLen).
///
/// Counts are total (possibly overlapping) occurrence counts, an upper
/// bound on the non-overlapping frequency the heat definition wants —
/// like Larus' algorithm, this trades a little precision for running on
/// the compressed representation.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_SUBPATHANALYZER_H
#define HDS_ANALYSIS_SUBPATHANALYZER_H

#include "analysis/HotDataStream.h"
#include "sequitur/Grammar.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace analysis {

/// Result of a grammar-subpath analysis pass.
struct SubpathAnalysisResult {
  /// Hot subpaths, hottest first, filtered to maximal ones (no reported
  /// stream is contained in another reported stream).
  std::vector<HotDataStream> Streams;
  uint64_t TraceLength = 0;
  /// Candidate windows enumerated (work metric for benches).
  uint64_t WindowsExamined = 0;
};

/// Runs the Larus-style subpath detection over \p Snapshot with the
/// thresholds of \p Config.  MinLength must be >= 2 (single symbols are
/// not streams); windows longer than MaxLength are not enumerated.
SubpathAnalysisResult
analyzeHotSubpaths(const sequitur::GrammarSnapshot &Snapshot,
                   const AnalysisConfig &Config);

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_SUBPATHANALYZER_H
