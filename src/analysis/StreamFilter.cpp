//===- analysis/StreamFilter.cpp - Shared stream post-filters -------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/StreamFilter.h"

#include <algorithm>

using namespace hds;
using namespace hds::analysis;

void hds::analysis::keepMaximalStreams(std::vector<HotDataStream> &Streams) {
  // Longest first so containment only needs to look at earlier survivors.
  std::sort(Streams.begin(), Streams.end(),
            [](const HotDataStream &A, const HotDataStream &B) {
              if (A.length() != B.length())
                return A.length() > B.length();
              return A.Heat > B.Heat;
            });

  std::vector<HotDataStream> Maximal;
  for (HotDataStream &S : Streams) {
    bool Contained = false;
    for (const HotDataStream &Longer : Maximal) {
      if (Longer.length() <= S.length() || Longer.Frequency < S.Frequency)
        continue;
      auto It = std::search(Longer.Symbols.begin(), Longer.Symbols.end(),
                            S.Symbols.begin(), S.Symbols.end());
      if (It != Longer.Symbols.end()) {
        Contained = true;
        break;
      }
    }
    if (!Contained)
      Maximal.push_back(std::move(S));
  }
  Streams = std::move(Maximal);

  std::sort(Streams.begin(), Streams.end(),
            [](const HotDataStream &A, const HotDataStream &B) {
              return A.Heat > B.Heat;
            });
}
