//===- analysis/PreciseAnalyzer.h - Exact hot stream detection -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact hot data stream detector that works directly on the
/// uncompressed trace.
///
/// The paper (Section 2.3) contrasts its fast grammar-based approximation
/// with Larus' precise hot-subpath algorithm [21]: "we use a faster, less
/// precise algorithm that relies more heavily on the ability of Sequitur to
/// infer hierarchical structure".  This module plays the role of the
/// precise comparator: it enumerates every distinct substring with length
/// in [minLen, maxLen], counts its maximal set of non-overlapping
/// occurrences (greedy left-to-right, which is optimal for a fixed
/// pattern), applies the heat definition v.heat = v.length * v.frequency
/// exactly, and keeps only maximal qualifying streams (those not contained
/// in another reported stream).  It is O(n * (maxLen - minLen)) time and
/// memory, versus the fast analyzer's O(grammar size) — the ablation bench
/// quantifies this gap.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_PRECISEANALYZER_H
#define HDS_ANALYSIS_PRECISEANALYZER_H

#include "analysis/HotDataStream.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace analysis {

/// Result of an exact analysis pass.
struct PreciseAnalysisResult {
  std::vector<HotDataStream> Streams;
  uint64_t TraceLength = 0;
  /// Number of candidate substrings inspected (work metric for benches).
  uint64_t CandidatesExamined = 0;
};

/// Runs the exact detector over \p Trace with thresholds from \p Config.
/// Streams are reported hottest-first.
PreciseAnalysisResult
analyzeHotStreamsPrecisely(const std::vector<uint32_t> &Trace,
                           const AnalysisConfig &Config);

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_PRECISEANALYZER_H
