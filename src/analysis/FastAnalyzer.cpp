//===- analysis/FastAnalyzer.cpp - Fast hot data stream detection ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/FastAnalyzer.h"

#include <cassert>

using namespace hds;
using namespace hds::analysis;
using hds::sequitur::GrammarSnapshot;

namespace {

/// Iterative DFS computing the reverse post-order numbering of Figure 5:
/// whenever B is a child of A, A.Index < B.Index, so later passes can walk
/// rules in ascending index order and see every predecessor first.
void numberRules(const GrammarSnapshot &Snapshot,
                 std::vector<RuleAnalysis> &PerRule,
                 std::vector<uint32_t> &ByIndex) {
  const size_t N = Snapshot.Rules.size();
  std::vector<uint8_t> Visited(N, 0);
  uint32_t Next = static_cast<uint32_t>(N);

  struct Frame {
    uint32_t Rule;
    size_t ChildPos; // next RHS position to explore
  };
  std::vector<Frame> Stack;
  Stack.push_back({0, 0});
  Visited[0] = 1;

  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const auto &Rhs = Snapshot.Rules[Top.Rule].Rhs;
    bool Descended = false;
    while (Top.ChildPos < Rhs.size()) {
      const auto &Item = Rhs[Top.ChildPos++];
      if (!Item.IsRule || Visited[Item.RuleIndex])
        continue;
      Visited[Item.RuleIndex] = 1;
      Stack.push_back({Item.RuleIndex, 0});
      Descended = true;
      break;
    }
    if (Descended)
      continue;
    // All children numbered; number this rule.
    assert(Next > 0 && "more numbered rules than rules");
    --Next;
    PerRule[Stack.back().Rule].Index = Next;
    Stack.pop_back();
  }

  // Every snapshot rule is reachable from the start rule, so Next is 0.
  assert(Next == 0 && "snapshot contained unreachable rules");

  ByIndex.assign(N, 0);
  for (uint32_t Rule = 0; Rule < N; ++Rule)
    ByIndex[PerRule[Rule].Index] = Rule;
}

/// Computes |w_A| for every rule in ascending-index (parents-first) order
/// reversed: children must be known before parents, so walk descending.
void computeLengths(const GrammarSnapshot &Snapshot,
                    const std::vector<uint32_t> &ByIndex,
                    std::vector<RuleAnalysis> &PerRule) {
  for (size_t I = ByIndex.size(); I-- > 0;) {
    const uint32_t Rule = ByIndex[I];
    uint64_t Length = 0;
    for (const auto &Item : Snapshot.Rules[Rule].Rhs) {
      if (Item.IsRule) {
        assert(PerRule[Item.RuleIndex].Index > PerRule[Rule].Index &&
               "child numbered before parent");
        Length += PerRule[Item.RuleIndex].Length;
      } else {
        Length += 1;
      }
    }
    PerRule[Rule].Length = Length;
  }
}

} // namespace

FastAnalysisResult
hds::analysis::analyzeHotStreams(const GrammarSnapshot &Snapshot,
                                 const AnalysisConfig &Config) {
  FastAnalysisResult Result;
  const size_t N = Snapshot.Rules.size();
  Result.PerRule.assign(N, RuleAnalysis());
  if (N == 0)
    return Result;

  std::vector<uint32_t> ByIndex;
  numberRules(Snapshot, Result.PerRule, ByIndex);
  computeLengths(Snapshot, ByIndex, Result.PerRule);
  Result.TraceLength = Result.PerRule[0].Length;

  // Find uses for non-terminals; initialize coldUses to uses (Figure 5).
  // Visiting in ascending index order guarantees A.Uses is final before any
  // child of A is updated.
  Result.PerRule[0].Uses = Result.PerRule[0].ColdUses = 1;
  for (uint32_t I = 0; I < N; ++I) {
    const uint32_t Rule = ByIndex[I];
    for (const auto &Item : Snapshot.Rules[Rule].Rhs) {
      if (!Item.IsRule)
        continue;
      RuleAnalysis &Child = Result.PerRule[Item.RuleIndex];
      Child.Uses += Result.PerRule[Rule].Uses;
      Child.ColdUses = Child.Uses;
    }
  }

  // Find hot non-terminals.  A non-terminal is only considered hot if it
  // accounts for enough of the trace on its own, where it is not part of
  // the expansion of other (already reported) hot non-terminals.
  for (uint32_t I = 0; I < N; ++I) {
    const uint32_t Rule = ByIndex[I];
    RuleAnalysis &A = Result.PerRule[Rule];
    A.Heat = A.Length * A.ColdUses;
    const bool IsStart = Rule == 0;
    const bool FHot = !IsStart && Config.MinLength <= A.Length &&
                      A.Length <= Config.MaxLength &&
                      Config.HeatThreshold <= A.Heat;
    A.Hot = FHot;
    if (FHot) {
      HotDataStream Stream;
      std::vector<uint64_t> Word = Snapshot.expand(Rule);
      Stream.Symbols.reserve(Word.size());
      for (uint64_t Terminal : Word)
        Stream.Symbols.push_back(static_cast<uint32_t>(Terminal));
      Stream.Frequency = A.ColdUses;
      Stream.Heat = A.Heat;
      Result.TotalHeat += A.Heat;
      Result.Streams.push_back(std::move(Stream));
    }

    // Occurrences of children below a hot rule are no longer "cold"; for a
    // cold rule only its own cold occurrences shadow the children.
    const uint64_t Subtract = FHot ? A.Uses : (A.Uses - A.ColdUses);
    if (Subtract == 0)
      continue;
    for (const auto &Item : Snapshot.Rules[Rule].Rhs) {
      if (!Item.IsRule)
        continue;
      RuleAnalysis &Child = Result.PerRule[Item.RuleIndex];
      assert(Child.ColdUses >= Subtract && "coldUses underflow");
      Child.ColdUses -= Subtract;
    }
  }

  return Result;
}
