//===- analysis/HotDataStream.h - Hot data stream types --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hot data stream is a data reference subsequence whose regularity
/// magnitude v.heat = v.length * v.frequency exceeds a predetermined heat
/// threshold H (Section 2.3).  These are the prefetch units of the whole
/// system: their prefixes are matched at run time and their suffixes
/// prefetched.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_HOTDATASTREAM_H
#define HDS_ANALYSIS_HOTDATASTREAM_H

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace hds {
namespace analysis {

/// One detected hot data stream over interned reference ids.
struct HotDataStream {
  /// The stream's data references in temporal order (RefIds).
  std::vector<uint32_t> Symbols;
  /// Estimated non-overlapping occurrence count (coldUses for the fast
  /// analyzer, exact count for the precise one).
  uint64_t Frequency = 0;
  /// Regularity magnitude: Symbols.size() * Frequency.
  uint64_t Heat = 0;

  uint64_t length() const { return Symbols.size(); }

  /// Number of distinct references in the stream; the paper configures the
  /// system to keep only streams with more than ten unique references
  /// (Section 4.1 — enough to justify a prefix-match + prefetch pair).
  uint64_t uniqueRefs() const {
    std::unordered_set<uint32_t> Unique(Symbols.begin(), Symbols.end());
    return Unique.size();
  }
};

/// Knobs shared by both analyzers; the names follow Figure 5.
struct AnalysisConfig {
  /// Streams shorter than this are not worth a DFSM state (minLen).
  uint64_t MinLength = 2;
  /// Streams longer than this are truncated opportunities (maxLen).
  uint64_t MaxLength = 100;
  /// Heat threshold H.  The optimizer sets this to cover streams that
  /// account for at least 1% of the traced references (Section 4.1).
  uint64_t HeatThreshold = 8;
};

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_HOTDATASTREAM_H
