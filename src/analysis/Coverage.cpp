//===- analysis/Coverage.cpp - Trace coverage of stream sets --------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/Coverage.h"

#include <algorithm>

using namespace hds;
using namespace hds::analysis;

double hds::analysis::traceCoverage(const std::vector<uint32_t> &Trace,
                                    const std::vector<HotDataStream> &Streams) {
  if (Trace.empty())
    return 0.0;

  std::vector<uint8_t> Covered(Trace.size(), 0);
  for (const HotDataStream &Stream : Streams) {
    if (Stream.Symbols.empty() || Stream.Symbols.size() > Trace.size())
      continue;
    auto SearchBegin = Trace.begin();
    while (true) {
      auto It = std::search(SearchBegin, Trace.end(), Stream.Symbols.begin(),
                            Stream.Symbols.end());
      if (It == Trace.end())
        break;
      const size_t Start = static_cast<size_t>(It - Trace.begin());
      std::fill(Covered.begin() + Start,
                Covered.begin() + Start + Stream.Symbols.size(), uint8_t{1});
      // Overlapping occurrences cover the same positions; advancing by one
      // position finds them all.
      SearchBegin = It + 1;
    }
  }

  uint64_t Count = 0;
  for (uint8_t Flag : Covered)
    Count += Flag;
  return static_cast<double>(Count) / static_cast<double>(Trace.size());
}
