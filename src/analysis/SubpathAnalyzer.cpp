//===- analysis/SubpathAnalyzer.cpp - Grammar hot-subpath analysis --------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/SubpathAnalyzer.h"

#include "analysis/StreamFilter.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

using namespace hds;
using namespace hds::analysis;
using hds::sequitur::GrammarSnapshot;

namespace {

/// Per-rule facts computed bottom-up.
struct RuleFacts {
  uint64_t Length = 0;               // |w_R|
  uint64_t Uses = 0;                 // occurrences in the parse tree
  std::vector<uint32_t> Prefix;      // first min(L-1, Length) terminals
  std::vector<uint32_t> Suffix;      // last  min(L-1, Length) terminals
  std::vector<uint32_t> FullIfShort; // whole expansion when Length <= 2(L-1)
};

struct VectorHash {
  size_t operator()(const std::vector<uint32_t> &V) const {
    uint64_t H = 0xCBF29CE484222325ULL;
    for (uint32_t X : V) {
      H ^= X;
      H *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(H);
  }
};

/// One position of a rule's boundary image: a terminal plus the RHS item
/// it came from, or a window-blocking gap.
struct ImageSlot {
  uint32_t Terminal;
  uint32_t Item; // index of the originating RHS item
  bool Gap;
};

} // namespace

SubpathAnalysisResult
hds::analysis::analyzeHotSubpaths(const GrammarSnapshot &Snapshot,
                                  const AnalysisConfig &Config) {
  SubpathAnalysisResult Result;
  const size_t N = Snapshot.Rules.size();
  if (N == 0 || Config.MinLength < 2)
    return Result;
  const uint64_t L = Config.MaxLength;
  const uint64_t Edge = L > 0 ? L - 1 : 0; // window reach into a child

  // Topological order (children after parents), exactly like Figure 5's
  // numbering: iterative DFS post-order reversed.
  std::vector<uint32_t> Topo;
  {
    std::vector<uint8_t> Visited(N, 0);
    struct Frame {
      uint32_t Rule;
      size_t Pos;
    };
    std::vector<Frame> Stack{{0, 0}};
    Visited[0] = 1;
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const auto &Rhs = Snapshot.Rules[Top.Rule].Rhs;
      bool Descended = false;
      while (Top.Pos < Rhs.size()) {
        const auto &Item = Rhs[Top.Pos++];
        if (Item.IsRule && !Visited[Item.RuleIndex]) {
          Visited[Item.RuleIndex] = 1;
          Stack.push_back({Item.RuleIndex, 0});
          Descended = true;
          break;
        }
      }
      if (!Descended) {
        Topo.push_back(Stack.back().Rule);
        Stack.pop_back();
      }
    }
    // Topo is post-order: children precede parents.
  }

  // Bottom-up: lengths, prefixes, suffixes, short expansions.
  std::vector<RuleFacts> Facts(N);
  for (uint32_t Rule : Topo) {
    RuleFacts &F = Facts[Rule];
    // Length and prefix.
    for (const auto &Item : Snapshot.Rules[Rule].Rhs) {
      if (Item.IsRule)
        F.Length += Facts[Item.RuleIndex].Length;
      else
        F.Length += 1;
      if (F.Prefix.size() < Edge) {
        if (Item.IsRule) {
          const auto &ChildPrefix = Facts[Item.RuleIndex].Prefix;
          for (size_t I = 0; I < ChildPrefix.size() && F.Prefix.size() < Edge;
               ++I)
            F.Prefix.push_back(ChildPrefix[I]);
        } else {
          F.Prefix.push_back(static_cast<uint32_t>(Item.Terminal));
        }
      }
    }
    // Suffix: walk backwards.
    const auto &Rhs = Snapshot.Rules[Rule].Rhs;
    std::vector<uint32_t> SuffixReversed;
    for (size_t I = Rhs.size(); I-- > 0 && SuffixReversed.size() < Edge;) {
      const auto &Item = Rhs[I];
      if (Item.IsRule) {
        const auto &ChildSuffix = Facts[Item.RuleIndex].Suffix;
        for (size_t J = ChildSuffix.size();
             J-- > 0 && SuffixReversed.size() < Edge;)
          SuffixReversed.push_back(ChildSuffix[J]);
      } else {
        SuffixReversed.push_back(static_cast<uint32_t>(Item.Terminal));
      }
    }
    F.Suffix.assign(SuffixReversed.rbegin(), SuffixReversed.rend());
    // Short rules keep their whole expansion for exact image building.
    if (F.Length <= 2 * Edge) {
      for (const auto &Item : Snapshot.Rules[Rule].Rhs) {
        if (Item.IsRule) {
          const auto &ChildFull = Facts[Item.RuleIndex].FullIfShort;
          assert(ChildFull.size() == Facts[Item.RuleIndex].Length &&
                 "short rule with a long child");
          F.FullIfShort.insert(F.FullIfShort.end(), ChildFull.begin(),
                               ChildFull.end());
        } else {
          F.FullIfShort.push_back(static_cast<uint32_t>(Item.Terminal));
        }
      }
    }
  }
  Result.TraceLength = Facts[0].Length;

  // Uses: parents before children (reverse of Topo).
  Facts[0].Uses = 1;
  for (size_t I = Topo.size(); I-- > 0;) {
    const uint32_t Rule = Topo[I];
    for (const auto &Item : Snapshot.Rules[Rule].Rhs)
      if (Item.IsRule)
        Facts[Item.RuleIndex].Uses += Facts[Rule].Uses;
  }

  // Enumerate boundary-crossing windows rule by rule.  Every substring of
  // the trace with length in [2, L] is attributed to exactly one rule
  // (the lowest rule whose occurrence's item boundary it crosses), so the
  // accumulated counts are exact total occurrence counts.
  std::unordered_map<std::vector<uint32_t>, uint64_t, VectorHash> Counts;
  std::vector<ImageSlot> Image;
  for (uint32_t Rule = 0; Rule < N; ++Rule) {
    const RuleFacts &F = Facts[Rule];
    if (F.Uses == 0)
      continue;

    // Build the boundary image of this rule's right-hand side.
    Image.clear();
    const auto &Rhs = Snapshot.Rules[Rule].Rhs;
    for (uint32_t ItemIdx = 0; ItemIdx < Rhs.size(); ++ItemIdx) {
      const auto &Item = Rhs[ItemIdx];
      if (!Item.IsRule) {
        Image.push_back({static_cast<uint32_t>(Item.Terminal), ItemIdx,
                         false});
        continue;
      }
      const RuleFacts &Child = Facts[Item.RuleIndex];
      if (!Child.FullIfShort.empty() || Child.Length == 0) {
        for (uint32_t T : Child.FullIfShort)
          Image.push_back({T, ItemIdx, false});
      } else {
        for (uint32_t T : Child.Prefix)
          Image.push_back({T, ItemIdx, false});
        Image.push_back({0, ItemIdx, /*Gap=*/true});
        for (uint32_t T : Child.Suffix)
          Image.push_back({T, ItemIdx, false});
      }
    }

    // Slide windows.
    for (size_t Start = 0; Start < Image.size(); ++Start) {
      if (Image[Start].Gap)
        continue;
      std::vector<uint32_t> Window;
      for (size_t End = Start;
           End < Image.size() && Window.size() < L; ++End) {
        if (Image[End].Gap)
          break;
        Window.push_back(Image[End].Terminal);
        if (Window.size() < 2)
          continue;
        // Only boundary-crossing windows belong to this rule.
        if (Image[Start].Item == Image[End].Item)
          continue;
        ++Result.WindowsExamined;
        Counts[Window] += F.Uses;
      }
    }
  }

  // Threshold and maximality-filter.  Qualifying windows are emitted in
  // lexicographic symbol order, not hash order: Result.Streams must be
  // identical across standard libraries for replay to stay byte-exact.
  std::vector<const std::pair<const std::vector<uint32_t>, uint64_t> *>
      Qualifying;
  // hds-lint: ordered-ok(collected into Qualifying and sorted lexicographically below)
  for (const auto &Entry : Counts) {
    const uint64_t Len = Entry.first.size();
    const uint64_t Count = Entry.second;
    if (Len < Config.MinLength || Count < 2)
      continue;
    if (Len * Count < Config.HeatThreshold)
      continue;
    Qualifying.push_back(&Entry);
  }
  std::sort(Qualifying.begin(), Qualifying.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });
  for (const auto *Entry : Qualifying) {
    HotDataStream Stream;
    Stream.Symbols = Entry->first;
    Stream.Frequency = Entry->second;
    Stream.Heat = Entry->first.size() * Entry->second;
    Result.Streams.push_back(std::move(Stream));
  }
  keepMaximalStreams(Result.Streams);
  return Result;
}
