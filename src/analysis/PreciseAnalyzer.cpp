//===- analysis/PreciseAnalyzer.cpp - Exact hot stream detection ----------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/PreciseAnalyzer.h"

#include "analysis/StreamFilter.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace hds;
using namespace hds::analysis;

namespace {

/// Rolling-hash window key plus a representative start position so equal
/// hashes can be verified against the actual substring (no silent hash
/// collisions).
struct Candidate {
  std::vector<size_t> Starts; // all occurrence starts, ascending
};

/// Counts the maximum number of pairwise non-overlapping occurrences for a
/// pattern of length \p Length whose starts are \p Starts (sorted).  Greedy
/// earliest-end selection is optimal for interval scheduling of equal-length
/// intervals.
uint64_t countNonOverlapping(const std::vector<size_t> &Starts,
                             uint64_t Length) {
  uint64_t Count = 0;
  size_t NextFree = 0;
  for (size_t Start : Starts) {
    if (Start < NextFree)
      continue;
    ++Count;
    NextFree = Start + Length;
  }
  return Count;
}

} // namespace

PreciseAnalysisResult
hds::analysis::analyzeHotStreamsPrecisely(const std::vector<uint32_t> &Trace,
                                          const AnalysisConfig &Config) {
  PreciseAnalysisResult Result;
  Result.TraceLength = Trace.size();
  const size_t N = Trace.size();
  if (N == 0 || Config.MinLength == 0)
    return Result;

  const uint64_t MaxLen = std::min<uint64_t>(Config.MaxLength, N);

  for (uint64_t Length = Config.MinLength; Length <= MaxLen; ++Length) {
    // Polynomial rolling hash over windows of this length.
    constexpr uint64_t Base = 0x100000001B3ULL;
    uint64_t BasePow = 1; // Base^(Length-1)
    for (uint64_t I = 1; I < Length; ++I)
      BasePow *= Base;

    std::unordered_map<uint64_t, std::vector<Candidate>> Windows;
    uint64_t Hash = 0;
    for (size_t I = 0; I < N; ++I) {
      Hash = Hash * Base + Trace[I] + 1;
      if (I + 1 < Length)
        continue;
      const size_t Start = I + 1 - Length;
      // Bucket by hash; verify content within the bucket.
      auto &Bucket = Windows[Hash];
      bool Placed = false;
      for (Candidate &C : Bucket) {
        const size_t Repr = C.Starts.front();
        if (std::equal(Trace.begin() + Repr, Trace.begin() + Repr + Length,
                       Trace.begin() + Start)) {
          C.Starts.push_back(Start);
          Placed = true;
          break;
        }
      }
      if (!Placed)
        Bucket.push_back(Candidate{{Start}});
      // Slide the window.
      Hash -= BasePow * (Trace[Start] + 1);
    }

    // Emit candidates ordered by first occurrence, not by hash-bucket
    // order: Result.Streams must be identical across standard libraries
    // for replay and the fast-vs-precise differential oracle to hold.
    std::vector<const Candidate *> Ordered;
    // hds-lint: ordered-ok(collected into Ordered and sorted by first occurrence below)
    for (const auto &Entry : Windows)
      for (const Candidate &C : Entry.second)
        Ordered.push_back(&C);
    std::sort(Ordered.begin(), Ordered.end(),
              [](const Candidate *A, const Candidate *B) {
                // First starts are distinct: every window start belongs to
                // exactly one candidate's occurrence list.
                return A->Starts.front() < B->Starts.front();
              });
    for (const Candidate *C : Ordered) {
      ++Result.CandidatesExamined;
      const uint64_t Frequency = countNonOverlapping(C->Starts, Length);
      const uint64_t Heat = Frequency * Length;
      if (Heat < Config.HeatThreshold || Frequency < 2)
        continue;
      HotDataStream Stream;
      const size_t Repr = C->Starts.front();
      Stream.Symbols.assign(Trace.begin() + Repr,
                            Trace.begin() + Repr + Length);
      Stream.Frequency = Frequency;
      Stream.Heat = Heat;
      Result.Streams.push_back(std::move(Stream));
    }
  }

  // Keep only maximal streams: drop any stream contained in a longer
  // reported stream with at least the same frequency (such substreams add
  // no prefetching opportunity the longer stream does not already cover).
  keepMaximalStreams(Result.Streams);
  return Result;
}
