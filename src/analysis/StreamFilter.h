//===- analysis/StreamFilter.h - Shared stream post-filters ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-processing shared by the exact analyzers: maximality filtering
/// (a reported stream must not be a substring of another reported stream
/// that recurs at least as often — such substreams add no prefetching
/// opportunity) and hottest-first ordering.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_STREAMFILTER_H
#define HDS_ANALYSIS_STREAMFILTER_H

#include "analysis/HotDataStream.h"

#include <vector>

namespace hds {
namespace analysis {

/// Drops every stream contained in a longer reported stream of at least
/// equal frequency, then sorts the survivors hottest first.
void keepMaximalStreams(std::vector<HotDataStream> &Streams);

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_STREAMFILTER_H
