//===- analysis/FastAnalyzer.h - Fast hot data stream detection -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast, linear-time approximation of hot data streams from Section 2.3
/// / Figure 5 of the paper.
///
/// Each non-terminal A of a Sequitur grammar generates exactly one word
/// w_A.  Define A.heat = w_A.length * A.coldUses, where A.coldUses counts
/// occurrences of A in the grammar's unique parse tree that are *not*
/// inside the sub-trees of other hot non-terminals.  A is hot iff
/// minLen <= A.length <= maxLen and H <= A.heat.  The analysis visits
/// non-terminals in reverse post-order (parents before children), so it
/// runs in time linear in the size of the grammar — the property the paper
/// trades precision for, relying on Sequitur's ability to infer hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_ANALYSIS_FASTANALYZER_H
#define HDS_ANALYSIS_FASTANALYZER_H

#include "analysis/HotDataStream.h"
#include "sequitur/Grammar.h"

#include <cstdint>
#include <vector>

namespace hds {
namespace analysis {

/// Per-rule values computed by the analysis — exactly the columns of the
/// paper's Table 1, exposed so tests and the worked-example bench can lock
/// them down.
struct RuleAnalysis {
  uint64_t Length = 0;    // |w_A|
  uint32_t Index = 0;     // reverse post-order number
  uint64_t Uses = 0;      // occurrences in the parse tree
  uint64_t ColdUses = 0;  // occurrences outside other hot sub-trees
  uint64_t Heat = 0;      // Length * ColdUses
  bool Hot = false;       // reported as a hot data stream
};

/// Result of one analysis run.
struct FastAnalysisResult {
  std::vector<HotDataStream> Streams;
  /// Per-snapshot-rule values, indexed like GrammarSnapshot::Rules.
  std::vector<RuleAnalysis> PerRule;
  /// Length of the full traced string (|w_S|).
  uint64_t TraceLength = 0;
  /// Sum of reported stream heats; Heat/TraceLength is the fraction of the
  /// trace the hot streams account for (80% in the paper's Figure 6
  /// example, ~90% for real programs per [8]).
  uint64_t TotalHeat = 0;

  double coverage() const {
    return TraceLength == 0
               ? 0.0
               : static_cast<double>(TotalHeat) /
                     static_cast<double>(TraceLength);
  }
};

/// Runs the Figure 5 algorithm over \p Snapshot.
///
/// The start rule (index 0) is never reported hot — it is the whole trace
/// (Table 1 marks it "no, start").  Streams are reported in ascending
/// reverse-post-order index, i.e. outermost-hottest first.
FastAnalysisResult analyzeHotStreams(const sequitur::GrammarSnapshot &Snapshot,
                                     const AnalysisConfig &Config);

} // namespace analysis
} // namespace hds

#endif // HDS_ANALYSIS_FASTANALYZER_H
