//===- obs/CycleAccount.h - Attributed simulated-cycle account -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single owner of every simulated cycle.  `CycleAccount` carries the
/// global clock total plus a named attribution phase for each cycle
/// charged, so Figure-11-style overhead breakdowns (base vs. checking vs.
/// profiling vs. analysis) fall out of the accounting instead of being
/// reconstructed from scattered counters.
///
/// This file is the designated accounting primitive for hds_lint rule C1:
/// the *only* place in the tree where cycle state is mutated is
/// CycleAccount::charge below.  Everything else calls charge() with a
/// phase; the lint rule discovers this class's fields from the type
/// definition and flags any mutation of them outside this file.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_OBS_CYCLEACCOUNT_H
#define HDS_OBS_CYCLEACCOUNT_H

#include "obs/Metrics.h"

#include <cstddef>
#include <cstdint>

namespace hds {
namespace obs {

/// Attribution phase for a charged cycle.  The enumerators are a
/// partition: every simulated cycle lands in exactly one phase, so the
/// per-phase totals always sum to the clock.
// hds-exhaustive
enum class CyclePhase : uint8_t {
  /// Workload computation plus the non-stalled portion of demand access
  /// latency (the single cycle an L1 hit costs).
  PureCompute = 0,
  /// Demand-miss stall: cycles the simulated processor waited on L2 or
  /// memory for a demand access.
  DemandStall = 1,
  /// Stall spent waiting out the remainder of an in-flight prefetch
  /// (a late prefetch that hid only part of its miss).
  PartialHitStall = 2,
  /// Injected dynamic-check code at procedure entries and back edges.
  DynamicCheck = 3,
  /// Bursty-tracing profiling overhead (per-reference trace cost while
  /// awake).
  Profiling = 4,
  /// DFSM prefix-match clause scanning at instrumented sites.
  PrefixMatch = 5,
  /// Prefetch instruction issue slots.
  PrefetchIssue = 6,
  /// Grammar construction, hot-stream detection, DFSM build, and binary
  /// patching (the optimizer's analyze-and-optimize step).
  Analysis = 7,
};

constexpr std::size_t NumCyclePhases = 8;

/// Stable snake_case name of a phase (used as metric ids and in reports).
inline const char *cyclePhaseName(CyclePhase Phase) {
  switch (Phase) {
  case CyclePhase::PureCompute:
    return "pure_compute";
  case CyclePhase::DemandStall:
    return "demand_stall";
  case CyclePhase::PartialHitStall:
    return "partial_hit_stall";
  case CyclePhase::DynamicCheck:
    return "dynamic_check";
  case CyclePhase::Profiling:
    return "profiling";
  case CyclePhase::PrefixMatch:
    return "prefix_match";
  case CyclePhase::PrefetchIssue:
    return "prefetch_issue";
  case CyclePhase::Analysis:
    return "analysis";
  }
  return "unknown";
}

/// Plain-data snapshot of a CycleAccount, one named field per phase.
/// This is what serializers carry (engine/Wire.h tag ResultBreakdown,
/// the results JSON "cycle_breakdown" object).
struct CycleBreakdown {
  uint64_t PureCompute = 0;
  uint64_t DemandStall = 0;
  uint64_t PartialHitStall = 0;
  uint64_t DynamicCheck = 0;
  uint64_t Profiling = 0;
  uint64_t PrefixMatch = 0;
  uint64_t PrefetchIssue = 0;
  uint64_t Analysis = 0;

  uint64_t total() const {
    return PureCompute + DemandStall + PartialHitStall + DynamicCheck +
           Profiling + PrefixMatch + PrefetchIssue + Analysis;
  }
};

/// Stable metric enumeration (append-only; see obs/Metrics.h).
template <typename CycleBreakdownT, typename Fn>
void visitCycleBreakdownMetrics(CycleBreakdownT &&Breakdown, Fn &&Visit) {
  Visit(MetricDef{"pure_compute", "cycles",
                  "workload compute plus non-stalled access latency"},
        Breakdown.PureCompute);
  Visit(MetricDef{"demand_stall", "cycles",
                  "demand-miss stall waiting on L2 or memory"},
        Breakdown.DemandStall);
  Visit(MetricDef{"partial_hit_stall", "cycles",
                  "stall waiting out the tail of an in-flight prefetch"},
        Breakdown.PartialHitStall);
  Visit(MetricDef{"dynamic_check", "cycles",
                  "injected dynamic checks at entries and back edges"},
        Breakdown.DynamicCheck);
  Visit(MetricDef{"profiling", "cycles",
                  "bursty-tracing per-reference profiling cost"},
        Breakdown.Profiling);
  Visit(MetricDef{"prefix_match", "cycles",
                  "DFSM match clause scanning at instrumented sites"},
        Breakdown.PrefixMatch);
  Visit(MetricDef{"prefetch_issue", "cycles",
                  "prefetch instruction issue slots"},
        Breakdown.PrefetchIssue);
  Visit(MetricDef{"analysis", "cycles",
                  "grammar, hot-stream, DFSM and patching analysis"},
        Breakdown.Analysis);
}

/// The account itself.  charge() is the only mutation entry point; the
/// clock total and the per-phase attribution advance together and can
/// never drift apart.  All arithmetic is unsigned integer (lint rule D5).
class CycleAccount {
public:
  /// Advances the clock by \p Cycles, attributed to \p Phase.
  void charge(uint64_t Cycles, CyclePhase Phase) {
    Total += Cycles;
    Phases[static_cast<std::size_t>(Phase)] += Cycles;
  }

  /// The global clock: sum of every phase.
  uint64_t total() const { return Total; }

  uint64_t phase(CyclePhase Phase) const {
    return Phases[static_cast<std::size_t>(Phase)];
  }

  /// Demand-side stall (full and partial) — the quantity the old
  /// HierarchyStats::StallCycles counter carried.
  uint64_t stallCycles() const {
    return phase(CyclePhase::DemandStall) + phase(CyclePhase::PartialHitStall);
  }

  void reset() { *this = CycleAccount(); }

  CycleBreakdown snapshot() const {
    CycleBreakdown B;
    B.PureCompute = phase(CyclePhase::PureCompute);
    B.DemandStall = phase(CyclePhase::DemandStall);
    B.PartialHitStall = phase(CyclePhase::PartialHitStall);
    B.DynamicCheck = phase(CyclePhase::DynamicCheck);
    B.Profiling = phase(CyclePhase::Profiling);
    B.PrefixMatch = phase(CyclePhase::PrefixMatch);
    B.PrefetchIssue = phase(CyclePhase::PrefetchIssue);
    B.Analysis = phase(CyclePhase::Analysis);
    return B;
  }

private:
  uint64_t Total = 0;
  uint64_t Phases[NumCyclePhases] = {};
};

} // namespace obs
} // namespace hds

#endif // HDS_OBS_CYCLEACCOUNT_H
