//===- obs/PrefetchStats.h - Prefetch effectiveness classes ----*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prefetch-effectiveness classification, per hot data stream.  Every
/// prefetch the memory hierarchy sees carries a stream tag (assigned by
/// PrefetchEngine at install time, threaded from the DFSM match through
/// prefetchT0), and every classification event lands in that stream's
/// bucket:
///
///   * useful         — demand access hit a prefetched, not-yet-touched
///                      line (the prefetch fully hid a miss)
///   * late           — demand access caught the block still in flight
///                      and stalled for the remainder (partially hidden)
///   * redundant      — the target was already cached or in flight at
///                      issue time
///   * dropped        — the in-flight queue was full at issue time
///   * unused-evicted — a prefetched line was evicted from L1 before any
///                      demand touch (pure pollution)
///
/// From the buckets the standard temporal-prefetcher figures of merit
/// derive:  accuracy = useful / issued,  coverage = useful / (useful +
/// remaining demand misses),  timeliness = useful / (useful + late).
/// Events, not a partition of issues: a both-level prefetch can be
/// evicted from L1 untouched and later still turn useful out of L2.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_OBS_PREFETCHSTATS_H
#define HDS_OBS_PREFETCHSTATS_H

#include "obs/Metrics.h"

#include <cstdint>

namespace hds {
namespace obs {

/// Tag for prefetches with no attributed origin (direct prefetchT0
/// callers, tests).  Their events land in an untagged bucket.  Hardware
/// prefetchers in src/prefetch/ issue under small reserved tags instead,
/// below the hot-stream tag range.
constexpr uint32_t NoStreamTag = 0xFFFFFFFFu;

/// Classification event counters for one stream (or the untagged bucket).
struct PrefetchClassCounts {
  uint64_t Issued = 0;
  uint64_t Useful = 0;
  uint64_t Late = 0;
  uint64_t Redundant = 0;
  uint64_t DroppedQueueFull = 0;
  uint64_t UnusedEvicted = 0;
};

/// One installed hot data stream's identity plus its classification
/// counters — the per-stream row of the effectiveness report and the
/// element of the wire/JSON "streams" block.
struct StreamPrefetchStats {
  uint64_t StreamTag = 0;
  /// Index of the optimization cycle that installed the stream.
  uint64_t InstallCycle = 0;
  /// Number of prefetch targets per complete prefix match (stream length
  /// minus the matched head).
  uint64_t Length = 0;
  uint64_t Issued = 0;
  uint64_t Useful = 0;
  uint64_t Late = 0;
  uint64_t Redundant = 0;
  uint64_t DroppedQueueFull = 0;
  uint64_t UnusedEvicted = 0;
  /// Closed-loop tuning state at end of run (prefetch/TuningPolicy.h):
  /// the degree/distance the controller settled on, and how many times
  /// the stream was squelched to degree 0.  Fixed-sequence runs report
  /// the static degree, distance 0, and no squelches.
  uint64_t FinalDegree = 0;
  uint64_t FinalDistance = 0;
  uint64_t Squelches = 0;

  /// useful / issued — of what we issued, how much paid off.
  double accuracy() const {
    return Issued == 0 ? 0.0
                       : static_cast<double>(Useful) /
                             static_cast<double>(Issued);
  }
  /// useful / (useful + late) — of the prefetches that were demanded,
  /// how many arrived in time.
  double timeliness() const {
    const uint64_t Demanded = Useful + Late;
    return Demanded == 0 ? 0.0
                         : static_cast<double>(Useful) /
                               static_cast<double>(Demanded);
  }
};

/// Stable metric enumeration (append-only; see obs/Metrics.h).
template <typename StreamPrefetchStatsT, typename Fn>
void visitStreamPrefetchStatsMetrics(StreamPrefetchStatsT &&Stats,
                                     Fn &&Visit) {
  Visit(MetricDef{"stream", "id", "stream tag assigned at install time",
                  MetricKind::Gauge},
        Stats.StreamTag);
  Visit(MetricDef{"install_cycle", "count",
                  "optimization cycle that installed the stream",
                  MetricKind::Gauge},
        Stats.InstallCycle);
  Visit(MetricDef{"length", "accesses",
                  "prefetch targets per complete prefix match",
                  MetricKind::Gauge},
        Stats.Length);
  Visit(MetricDef{"issued", "prefetches",
                  "prefetch requests attributed to this stream"},
        Stats.Issued);
  Visit(MetricDef{"useful", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.Useful);
  Visit(MetricDef{"late", "prefetches",
                  "demand accesses that stalled on the block in flight"},
        Stats.Late);
  Visit(MetricDef{"redundant", "prefetches",
                  "target already cached or in flight at issue"},
        Stats.Redundant);
  Visit(MetricDef{"dropped_queue_full", "prefetches",
                  "issue dropped because the in-flight queue was full"},
        Stats.DroppedQueueFull);
  Visit(MetricDef{"unused_evicted", "prefetches",
                  "prefetched lines evicted from L1 before any use"},
        Stats.UnusedEvicted);
  Visit(MetricDef{"final_degree", "prefetches",
                  "prefetch degree at end of run (tuned or static)",
                  MetricKind::Gauge},
        Stats.FinalDegree);
  Visit(MetricDef{"final_distance", "blocks",
                  "prefetch distance at end of run (tuned; 0 when static)",
                  MetricKind::Gauge},
        Stats.FinalDistance);
  Visit(MetricDef{"squelches", "count",
                  "times the tuner squelched the stream to degree 0",
                  MetricKind::Gauge},
        Stats.Squelches);
}

/// One hardware prefetcher's identity plus its classification counters —
/// the per-prefetcher row of the zoo report and the element of the
/// wire/JSON "prefetchers" block (src/prefetch/).  Classification
/// counters are joined from the hierarchy's per-tag buckets exactly like
/// the per-stream rows above; Trains counts table updates inside the
/// prefetcher itself.  SelectedRegions / SampledEpochs are only non-zero
/// under the dueling selector: regions this candidate won, and epochs it
/// was the sampled issuer.
struct PrefetcherStats {
  /// prefetch::Prefetcher::Kind of the row's prefetcher.
  uint64_t Kind = 0;
  /// Stream tag the prefetcher issues under (reserved below hot-stream
  /// tags).
  uint64_t Tag = 0;
  uint64_t Trains = 0;
  uint64_t Issued = 0;
  uint64_t Useful = 0;
  uint64_t Late = 0;
  uint64_t Redundant = 0;
  uint64_t DroppedQueueFull = 0;
  uint64_t UnusedEvicted = 0;
  uint64_t SelectedRegions = 0;
  uint64_t SampledEpochs = 0;
  /// Degree at end of run: the closed-loop tuner's settled value, or the
  /// engine's configured constant when tuning is off.
  uint64_t FinalDegree = 0;
};

/// Stable metric enumeration (append-only; see obs/Metrics.h).
template <typename PrefetcherStatsT, typename Fn>
void visitPrefetcherStatsMetrics(PrefetcherStatsT &&Stats, Fn &&Visit) {
  Visit(MetricDef{"kind", "id", "prefetcher kind (Prefetcher::Kind index)",
                  MetricKind::Gauge},
        Stats.Kind);
  Visit(MetricDef{"tag", "id", "stream tag the prefetcher issues under",
                  MetricKind::Gauge},
        Stats.Tag);
  Visit(MetricDef{"trains", "accesses",
                  "table training updates the prefetcher performed"},
        Stats.Trains);
  Visit(MetricDef{"issued", "prefetches",
                  "prefetch requests attributed to this prefetcher"},
        Stats.Issued);
  Visit(MetricDef{"useful", "prefetches",
                  "demand hits on untouched prefetched lines"},
        Stats.Useful);
  Visit(MetricDef{"late", "prefetches",
                  "demand accesses that stalled on the block in flight"},
        Stats.Late);
  Visit(MetricDef{"redundant", "prefetches",
                  "target already cached or in flight at issue"},
        Stats.Redundant);
  Visit(MetricDef{"dropped_queue_full", "prefetches",
                  "issue dropped because the in-flight queue was full"},
        Stats.DroppedQueueFull);
  Visit(MetricDef{"unused_evicted", "prefetches",
                  "prefetched lines evicted from L1 before any use"},
        Stats.UnusedEvicted);
  Visit(MetricDef{"selected_regions", "count",
                  "dueling regions whose converged winner is this candidate",
                  MetricKind::Gauge},
        Stats.SelectedRegions);
  Visit(MetricDef{"sampled_epochs", "count",
                  "dueling epochs in which this candidate was the issuer",
                  MetricKind::Gauge},
        Stats.SampledEpochs);
  Visit(MetricDef{"final_degree", "prefetches",
                  "prefetch degree at end of run (tuned or static)",
                  MetricKind::Gauge},
        Stats.FinalDegree);
}

} // namespace obs
} // namespace hds

#endif // HDS_OBS_PREFETCHSTATS_H
