//===- obs/Timeline.h - Phase timeline for trace events --------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequence of named, back-to-back phase spans over the simulated cycle
/// clock: awake (profiling) → analysis → hibernation → awake → ...  The
/// runtime records the optimizer's phase transitions here; `hds_run
/// --trace-events` renders the spans as a Chrome trace-event JSON
/// timeline (chrome://tracing, Perfetto).
///
/// The API is deliberately begin-only: begin() closes any open span at
/// the same cycle, so the timeline is always a gap-free partition of
/// [0, last begin).  The writer closes the final open span at the run's
/// last cycle.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_OBS_TIMELINE_H
#define HDS_OBS_TIMELINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace hds {
namespace obs {

/// One phase span, in simulated cycles.  Open spans (the current phase)
/// have Open = true and an EndCycle equal to their BeginCycle until
/// closed.
struct PhaseSpan {
  std::string Name;
  uint64_t BeginCycle = 0;
  uint64_t EndCycle = 0;
  bool Open = false;
};

class Timeline {
public:
  /// Starts a new span named \p Name at \p Cycle, closing any open span
  /// at the same cycle.  Zero-length spans are dropped on close.
  void begin(const std::string &Name, uint64_t Cycle) {
    closeOpen(Cycle);
    Spans.push_back({Name, Cycle, Cycle, /*Open=*/true});
  }

  /// Closes the open span (if any) at \p Cycle.  A span closed at its own
  /// begin cycle is removed — it never happened.
  void closeOpen(uint64_t Cycle) {
    if (Spans.empty() || !Spans.back().Open)
      return;
    if (Spans.back().BeginCycle >= Cycle) {
      Spans.pop_back();
      return;
    }
    Spans.back().EndCycle = Cycle;
    Spans.back().Open = false;
  }

  const std::vector<PhaseSpan> &spans() const { return Spans; }
  bool empty() const { return Spans.empty(); }
  void clear() { Spans.clear(); }

private:
  std::vector<PhaseSpan> Spans;
};

} // namespace obs
} // namespace hds

#endif // HDS_OBS_TIMELINE_H
