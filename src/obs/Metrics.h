//===- obs/Metrics.h - Typed metric definitions ----------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `MetricDef` descriptor every stats struct in the tree annotates its
/// fields with.  A metric has a stable id (its JSON key and its `--diff`
/// cell-pairing name), a unit, and a doc string; the per-struct
/// `visit*Metrics` enumerations (core/RunStats.h, memsim/Cache.h,
/// memsim/MemoryHierarchy.h, obs/CycleAccount.h, obs/PrefetchStats.h)
/// pair each definition with a reference to the live field, in a fixed
/// append-only order.  That single enumeration drives JSON emission, the
/// binary wire encoding, and the metric registry (engine/MetricRegistry.h),
/// so the three can never disagree on field names or order.
///
/// Append-only contract: new metrics are appended at the end of their
/// block's visit function, never reordered or removed; removing or
/// reordering requires a wire protocol version bump (engine/Wire.h).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_OBS_METRICS_H
#define HDS_OBS_METRICS_H

namespace hds {
namespace obs {

/// Kind of quantity a metric reports.  Everything in the tree today is a
/// monotone counter or a point-in-time gauge snapshot of one.
// hds-exhaustive
enum class MetricKind : unsigned char {
  Counter, ///< monotonically increasing over a run
  Gauge,   ///< point-in-time value (e.g. a chosen hibernation length)
};

/// Static description of one metric.  All strings are literals with
/// program lifetime; a MetricDef is freely copyable.
struct MetricDef {
  const char *Id;   ///< stable snake_case id == JSON key == diff cell name
  const char *Unit; ///< "cycles", "accesses", "prefetches", "count", ...
  const char *Doc;  ///< one-line human description
  MetricKind Kind = MetricKind::Counter;
};

} // namespace obs
} // namespace hds

#endif // HDS_OBS_METRICS_H
