//===- fleet/Coordinator.h - Fleet experiment coordinator ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of the fleet experiment service: it listens on a
/// transport address, admits workers through the authenticated hello
/// (fleet/Auth.h), registers them with their declared capabilities
/// (fleet/Registry.h), hands spec indices out *pull-style* (a worker
/// asks for a job whenever it is free, so fast workers naturally take
/// more cells), and merges the returned (index, RunResult) pairs through
/// the same index-addressed ResultSink the in-process engine uses —
/// which is exactly why a fleet run aggregates to the same bytes as a
/// local one (docs/engine.md, "Distributed mode"; docs/fleet.md).
///
/// Failure policy: a worker that disconnects, times out, goes silent
/// past its heartbeat window, or talks garbage gets its in-flight job
/// re-queued, up to a bounded per-job retry budget; after the budget is
/// exhausted the job resolves as Status::Error with a reason.  A
/// coordinator with unresolved jobs and no connected workers fails the
/// remainder after an idle deadline.  Every job therefore resolves — the
/// matrix can degrade but never hang.  A drain request stops assignment,
/// lets in-flight cells finish (and journal), and leaves the remainder
/// to resolve as Cancelled.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_COORDINATOR_H
#define HDS_FLEET_COORDINATOR_H

#include "engine/ExperimentSpec.h"
#include "engine/ResultSink.h"
#include "engine/Transport.h"
#include "fleet/Checkpoint.h"
#include "fleet/Events.h"
#include "fleet/Registry.h"

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hds {
namespace fleet {

struct CoordinatorOptions {
  /// "host:port" (port 0 = ephemeral) or "unix:/path".  Non-loopback
  /// hosts are refused unless AllowNonLoopback is set *and* Token is
  /// non-empty (docs/fleet.md, "Trust model").
  std::string ListenAddr = "127.0.0.1:0";
  /// Per-job result deadline: how long a worker may hold an assignment
  /// before the coordinator re-queues it.  Also bounds every send.
  uint32_t JobTimeoutMs = 120000;
  /// With unresolved jobs and zero connected workers, give up after
  /// this long and resolve the remainder as errors instead of hanging.
  uint32_t IdleTimeoutMs = 30000;
  /// Re-queues per job before it resolves as Status::Error.
  unsigned RetryBudget = 2;
  /// Shared secret for the authenticated hello.  Empty (the loopback
  /// default) still runs the challenge/response, proving liveness and
  /// version agreement but not identity.
  std::string Token;
  /// Opt-in gate for non-loopback TCP listeners.
  bool AllowNonLoopback = false;
  /// Worker heartbeat cadence the coordinator expects; also the receive
  /// poll slice of every service thread.  0 disables liveness tracking
  /// (only the per-job deadline then drops a silent worker).
  uint32_t HeartbeatIntervalMs = 1000;
  /// Quiet heartbeat intervals before a worker is declared dead and its
  /// assignment re-queued.
  unsigned HeartbeatMisses = 5;
  /// When non-null and set, drain gracefully: stop assigning, let
  /// in-flight cells finish (and journal), resolve the rest Cancelled.
  const std::atomic<bool> *DrainRequested = nullptr;
  /// Lifecycle observer (may be null).  Handlers run on accept/service
  /// threads, sometimes under coordinator locks: keep them quick.
  FleetEvents *Events = nullptr;
  /// Checkpoint journal (may be null).  Completed cells are appended
  /// and flushed *before* delivery to the sink.
  CheckpointWriter *Journal = nullptr;
};

/// Serves one experiment matrix to pull-style fleet workers.
class Coordinator {
public:
  explicit Coordinator(const CoordinatorOptions &OptsIn);

  /// Binds the listener.  On failure returns false and error() says why;
  /// serve() on an unbound coordinator resolves every job as an error.
  /// Refuses non-loopback addresses unless the options opt in.
  bool listen();
  const std::string &error() const { return ListenError; }

  /// Address workers should connect to (the real ephemeral port when
  /// ListenAddr asked for port 0).  Valid after listen() succeeds.
  const std::string &boundAddress() const { return Sockets.boundAddress(); }

  /// Dispatches every spec and blocks until each sink slot is resolved
  /// (result delivered, error after retries, or left for the sink to
  /// report Cancelled on drain).  \p AlreadyResolved (when non-null)
  /// marks cells restored from a checkpoint: they are skipped, not
  /// re-dispatched — the caller has already delivered them.  Spawns one
  /// service thread per connected worker; all threads are joined before
  /// returning.
  void serve(std::span<const engine::ExperimentSpec> Specs,
             engine::ResultSink &Sink,
             const std::vector<bool> *AlreadyResolved = nullptr);

  /// Roster of workers that passed the authenticated hello.
  const WorkerRegistry &registry() const { return Registry; }

private:
  struct ServeState;
  void handleWorker(engine::Connection Conn, ServeState &State);

  CoordinatorOptions Opts;
  engine::Listener Sockets;
  WorkerRegistry Registry;
  std::string ListenError;
};

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_COORDINATOR_H
