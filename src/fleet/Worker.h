//===- fleet/Worker.h - Fleet experiment worker loop -----------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the fleet experiment service: connect to a
/// coordinator, pass the authenticated hello (fleet/Auth.h) announcing
/// this host's capabilities, pull spec assignments, run each through the
/// exact same per-job private-Runtime path an in-process run uses
/// (engine/ExperimentRunner.h), and stream the results back.  Because
/// the simulation itself is a pure function of the spec, a result
/// computed here is byte-for-byte the result a local thread would have
/// produced — the wire moves bytes, it never changes them.
///
/// While the main loop runs (or blocks on a long cell), a background
/// beater sends Heartbeat frames every HeartbeatIntervalMs so the
/// coordinator can tell "slow" from "dead".
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_WORKER_H
#define HDS_FLEET_WORKER_H

#include "fleet/Registry.h"

#include <cstdint>
#include <string>

namespace hds {
namespace fleet {

struct WorkerOptions {
  /// Deadline for every send/recv.  Must comfortably exceed the
  /// coordinator's gap between assignments (a worker waiting for work
  /// blocks in recv until a job is pulled or the matrix resolves).
  uint32_t IoTimeoutMs = 120000;
  /// Shared secret for the authenticated hello; must match the
  /// coordinator's --token (empty matches empty — the loopback default).
  std::string Token;
  /// Advisory capabilities announced in the Hello (docs/fleet.md);
  /// zeroes are legal and mean "unstated".
  WorkerCapabilities Caps;
  /// Heartbeat cadence.  0 disables the beater (tests use this to
  /// simulate a wedged worker).
  uint32_t HeartbeatIntervalMs = 1000;
  /// Fault injection for tests: after running this many jobs, drop the
  /// connection *without sending the last result* — exactly what a
  /// worker killed mid-job looks like to the coordinator.  0 = never.
  uint64_t DropAfterJobs = 0;
};

enum class WorkerExit : uint8_t {
  CleanShutdown, ///< coordinator said Shutdown: matrix resolved
  Dropped,       ///< DropAfterJobs fault injection tripped
  ConnectFailed,
  ProtocolError, ///< unexpected/undecodable frame, send failed, or the
                 ///< coordinator rejected the hello
  TimedOut,      ///< coordinator went quiet past IoTimeoutMs
};

/// Runs the worker loop against the coordinator at \p Addr
/// ("host:port" or "unix:/path") until shutdown or failure.  On
/// failure, \p Error (when non-null) carries a description.
WorkerExit runWorker(const std::string &Addr,
                     const WorkerOptions &Opts = WorkerOptions(),
                     std::string *Error = nullptr);

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_WORKER_H
