//===- fleet/Auth.cpp - Authenticated hello for the fleet service ---------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Auth.h"

#include <cstddef>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace hds;
using namespace hds::fleet;

namespace {

uint64_t rotl64(uint64_t X, int B) { return (X << B) | (X >> (64 - B)); }

/// SipHash-2-4 over \p Data with key (K0, K1).  Reference construction
/// (Aumasson & Bernstein), enough for a keyed 64-bit MAC over the tiny
/// handshake message.
uint64_t siphash24(uint64_t K0, uint64_t K1, const uint8_t *Data,
                   std::size_t Size) {
  uint64_t V0 = 0x736f6d6570736575ULL ^ K0;
  uint64_t V1 = 0x646f72616e646f6dULL ^ K1;
  uint64_t V2 = 0x6c7967656e657261ULL ^ K0;
  uint64_t V3 = 0x7465646279746573ULL ^ K1;

  auto Round = [&] {
    V0 += V1;
    V1 = rotl64(V1, 13);
    V1 ^= V0;
    V0 = rotl64(V0, 32);
    V2 += V3;
    V3 = rotl64(V3, 16);
    V3 ^= V2;
    V0 += V3;
    V3 = rotl64(V3, 21);
    V3 ^= V0;
    V2 += V1;
    V1 = rotl64(V1, 17);
    V1 ^= V2;
    V2 = rotl64(V2, 32);
  };

  const std::size_t Tail = Size & 7u;
  const uint8_t *End = Data + (Size - Tail);
  for (const uint8_t *P = Data; P != End; P += 8) {
    uint64_t M = 0;
    for (int I = 0; I < 8; ++I)
      M |= static_cast<uint64_t>(P[I]) << (8 * I);
    V3 ^= M;
    Round();
    Round();
    V0 ^= M;
  }
  uint64_t Last = static_cast<uint64_t>(Size & 0xFFu) << 56;
  for (std::size_t I = 0; I < Tail; ++I)
    Last |= static_cast<uint64_t>(End[I]) << (8 * I);
  V3 ^= Last;
  Round();
  Round();
  V0 ^= Last;

  V2 ^= 0xFF;
  Round();
  Round();
  Round();
  Round();
  return V0 ^ V1 ^ V2 ^ V3;
}

/// FNV-1a 64 with a caller-chosen basis, used only to spread the token
/// bytes into the two SipHash key words.
uint64_t fnv64(const std::string &Text, uint64_t Basis) {
  uint64_t Hash = Basis;
  for (const char C : Text) {
    Hash ^= static_cast<uint8_t>(C);
    Hash *= 0x100000001B3ULL;
  }
  return Hash;
}

/// splitmix64 finalizer: turns correlated integers into well-mixed ones.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

} // namespace

AuthNonce fleet::makeNonce(uint64_t Salt) {
  uint64_t Words[2] = {0, 0};
  const int Fd = ::open("/dev/urandom", O_RDONLY);
  if (Fd >= 0) {
    std::size_t Got = 0;
    while (Got < sizeof(Words)) {
      const ssize_t N = ::read(Fd, reinterpret_cast<uint8_t *>(Words) + Got,
                               sizeof(Words) - Got);
      if (N <= 0)
        break;
      Got += static_cast<std::size_t>(N);
    }
    ::close(Fd);
  }
  // Fold in the salt and pid even on the happy path: nonces must differ
  // per connection no matter what the entropy source returned.
  AuthNonce Nonce;
  Nonce.Hi = mix64(Words[0] ^ mix64(Salt));
  Nonce.Lo = mix64(Words[1] ^ mix64(static_cast<uint64_t>(::getpid()) ^
                                    ~Salt));
  return Nonce;
}

uint64_t fleet::proofDigest(const std::string &Token, const AuthNonce &Nonce,
                            uint8_t ProtocolVersion) {
  const uint64_t K0 = fnv64(Token, 0xCBF29CE484222325ULL);
  const uint64_t K1 = fnv64(Token, 0x8422232514650FB0ULL);
  uint8_t Message[17];
  for (int I = 0; I < 8; ++I)
    Message[I] = static_cast<uint8_t>((Nonce.Hi >> (8 * I)) & 0xFFu);
  for (int I = 0; I < 8; ++I)
    Message[8 + I] = static_cast<uint8_t>((Nonce.Lo >> (8 * I)) & 0xFFu);
  Message[16] = ProtocolVersion;
  return siphash24(K0, K1, Message, sizeof(Message));
}
