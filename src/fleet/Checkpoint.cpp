//===- fleet/Checkpoint.cpp - Append-only matrix checkpoint ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Checkpoint.h"

#include "engine/Wire.h"

#include <fstream>
#include <utility>

using namespace hds;
using namespace hds::fleet;
using namespace hds::engine;

uint64_t fleet::matrixFingerprint(std::span<const ExperimentSpec> Specs) {
  std::vector<uint8_t> Bytes;
  wire::appendU64(Bytes, Specs.size());
  for (const ExperimentSpec &Spec : Specs)
    wire::encodeSpec(Bytes, Spec);
  const uint32_t Crc = wire::crc32(Bytes.data(), Bytes.size());
  return (static_cast<uint64_t>(Crc) << 32) |
         (Specs.size() & 0xFFFFFFFFULL);
}

namespace {

std::vector<uint8_t>
encodeHeaderPayload(std::span<const ExperimentSpec> Specs) {
  std::vector<uint8_t> Out;
  wire::appendU64(Out, matrixFingerprint(Specs));
  wire::appendU64(Out, Specs.size());
  for (const ExperimentSpec &Spec : Specs)
    wire::encodeSpec(Out, Spec);
  return Out;
}

} // namespace

CheckpointWriter::~CheckpointWriter() { close(); }

bool CheckpointWriter::create(const std::string &Path,
                              std::span<const ExperimentSpec> Specs,
                              std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (File != nullptr) {
    Error = "checkpoint journal already open";
    return false;
  }
  File = std::fopen(Path.c_str(), "wb");
  if (File == nullptr) {
    Error = "cannot create checkpoint journal '" + Path + "'";
    return false;
  }
  const std::vector<uint8_t> Frame = wire::encodeFrame(
      wire::FrameType::CheckpointHeader, encodeHeaderPayload(Specs));
  if (std::fwrite(Frame.data(), 1, Frame.size(), File) != Frame.size() ||
      std::fflush(File) != 0) {
    Error = "cannot write checkpoint header to '" + Path + "'";
    std::fclose(File);
    File = nullptr;
    return false;
  }
  Records = 0;
  return true;
}

bool CheckpointWriter::openAppend(const std::string &Path,
                                  std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (File != nullptr) {
    Error = "checkpoint journal already open";
    return false;
  }
  File = std::fopen(Path.c_str(), "ab");
  if (File == nullptr) {
    Error = "cannot reopen checkpoint journal '" + Path + "'";
    return false;
  }
  Records = 0;
  return true;
}

bool CheckpointWriter::append(std::size_t Index, const RunResult &Result) {
  if (Result.State != RunResult::Status::Ok)
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (File == nullptr)
    return false;
  const std::vector<uint8_t> Frame = wire::encodeFrame(
      wire::FrameType::Result, wire::encodeResult(Index, Result));
  if (std::fwrite(Frame.data(), 1, Frame.size(), File) != Frame.size())
    return false;
  // Per-record flush: a SIGKILL between appends loses at most the torn
  // tail of the record being written, which the reader drops.
  if (std::fflush(File) != 0)
    return false;
  ++Records;
  return true;
}

bool CheckpointWriter::isOpen() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return File != nullptr;
}

std::size_t CheckpointWriter::records() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Records;
}

void CheckpointWriter::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (File != nullptr) {
    std::fclose(File);
    File = nullptr;
  }
}

bool fleet::readCheckpoint(const std::string &Path, CheckpointContents &Out,
                           std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read checkpoint journal '" + Path + "'";
    return false;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (Bytes.empty()) {
    Error = "checkpoint journal '" + Path + "' is empty";
    return false;
  }

  std::size_t Pos = 0;
  bool SawHeader = false;
  while (Pos < Bytes.size()) {
    wire::Frame Frame;
    std::size_t Consumed = 0;
    std::string DecodeError;
    const wire::DecodeStatus Status = wire::decodeFrame(
        Bytes.data() + Pos, Bytes.size() - Pos, Frame, Consumed, DecodeError);
    if (Status == wire::DecodeStatus::NeedMore) {
      if (!SawHeader) {
        Error = "checkpoint journal truncated before its header";
        return false;
      }
      // A coordinator killed mid-append tears exactly the final frame;
      // drop it and let that cell re-run.
      Out.TornTail = true;
      break;
    }
    if (Status == wire::DecodeStatus::Malformed) {
      Error = "malformed checkpoint journal at byte " + std::to_string(Pos) +
              ": " + DecodeError;
      return false;
    }
    Pos += Consumed;

    if (!SawHeader) {
      if (Frame.Type != wire::FrameType::CheckpointHeader) {
        Error = "'" + Path + "' is not a checkpoint journal (first frame "
                "is not a CheckpointHeader)";
        return false;
      }
      wire::Reader R(Frame.Payload);
      uint64_t Count = 0;
      if (!R.readU64(Out.Fingerprint) || !R.readU64(Count)) {
        Error = "checkpoint header truncated";
        return false;
      }
      // Each spec is several tagged fields; a count beyond the payload
      // bytes is corruption, not a real matrix.
      if (Count > Frame.Payload.size()) {
        Error = "checkpoint header spec count exceeds payload";
        return false;
      }
      Out.Specs.resize(static_cast<std::size_t>(Count));
      for (ExperimentSpec &Spec : Out.Specs)
        if (!wire::decodeSpec(R, Spec, DecodeError)) {
          Error = "checkpoint header spec undecodable: " + DecodeError;
          return false;
        }
      if (!R.atEnd()) {
        Error = "trailing bytes after checkpoint header";
        return false;
      }
      if (matrixFingerprint(Out.Specs) != Out.Fingerprint) {
        Error = "checkpoint header fingerprint does not match its specs";
        return false;
      }
      Out.Results.assign(Out.Specs.size(), RunResult{});
      Out.Resolved.assign(Out.Specs.size(), false);
      SawHeader = true;
      continue;
    }

    if (Frame.Type != wire::FrameType::Result) {
      Error = "unexpected frame type in checkpoint journal at byte " +
              std::to_string(Pos - Consumed);
      return false;
    }
    uint64_t Index = 0;
    RunResult Result;
    if (!wire::decodeResult(Frame.Payload, Index, Result, DecodeError)) {
      Error = "undecodable checkpoint record: " + DecodeError;
      return false;
    }
    if (Index >= Out.Specs.size()) {
      Error = "checkpoint record index " + std::to_string(Index) +
              " outside the " + std::to_string(Out.Specs.size()) +
              "-cell matrix";
      return false;
    }
    if (Out.Resolved[static_cast<std::size_t>(Index)]) {
      Error = "duplicate checkpoint record for cell " + std::to_string(Index);
      return false;
    }
    if (Result.State != RunResult::Status::Ok) {
      Error = "checkpoint record for cell " + std::to_string(Index) +
              " is not an ok result";
      return false;
    }
    Out.Resolved[static_cast<std::size_t>(Index)] = true;
    Out.Results[static_cast<std::size_t>(Index)] = std::move(Result);
    ++Out.CompletedCells;
  }
  return true;
}
