//===- fleet/FleetExecutor.cpp - Fleet-backed Executor --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetExecutor.h"

#include "fleet/Events.h"
#include "fleet/Worker.h"

#include <cerrno>
#include <sys/wait.h>
#include <unistd.h>

#include <utility>
#include <vector>

using namespace hds;
using namespace hds::fleet;
using namespace hds::engine;

namespace {

CoordinatorOptions coordinatorOptions(const FleetConfig &Config,
                                      CheckpointWriter *Journal) {
  CoordinatorOptions Opts;
  Opts.ListenAddr = Config.ListenAddr;
  Opts.JobTimeoutMs = Config.JobTimeoutMs;
  Opts.IdleTimeoutMs = Config.IdleTimeoutMs;
  Opts.RetryBudget = Config.RetryBudget;
  Opts.Token = Config.Token;
  Opts.AllowNonLoopback = Config.AllowNonLoopback;
  Opts.HeartbeatIntervalMs = Config.HeartbeatIntervalMs;
  Opts.HeartbeatMisses = Config.HeartbeatMisses;
  Opts.DrainRequested = Config.CancelRequested;
  Opts.Events = Config.Events;
  Opts.Journal = Journal;
  return Opts;
}

} // namespace

FleetExecutor::FleetExecutor(const FleetConfig &ConfigIn)
    : Config(ConfigIn),
      // The journal pointer is handed over before the writer is opened;
      // append() on a closed writer is a harmless no-op, so the
      // coordinator never needs to know whether checkpointing is on.
      Coord(coordinatorOptions(ConfigIn, &Journal)) {
  if (Config.Resume && Config.CheckpointPath.empty()) {
    Err = "resume requested without a checkpoint journal path";
    return;
  }
  Valid = Coord.listen();
  if (!Valid)
    Err = Coord.error();
}

void FleetExecutor::failAll(std::span<const ExperimentSpec> Specs,
                            ResultSink &Sink, const std::string &Reason,
                            const std::vector<bool> *Skip) {
  for (std::size_t Index = 0; Index < Specs.size(); ++Index) {
    if (Skip && Index < Skip->size() && (*Skip)[Index])
      continue;
    RunResult Failed;
    Failed.Spec = Specs[Index];
    Failed.State = RunResult::Status::Error;
    Failed.Error = Reason;
    Sink.deliver(Index, std::move(Failed));
  }
}

void FleetExecutor::runAll(std::span<const ExperimentSpec> Specs,
                           ResultSink &Sink) {
  if (!Valid) {
    failAll(Specs, Sink, "fleet executor invalid: " + Err);
    return;
  }
  if (Specs.empty())
    return;

  // Checkpoint plumbing: restore on resume, then (re)open the journal
  // for the cells this run will complete.
  std::vector<bool> Already;
  if (!Config.CheckpointPath.empty()) {
    if (Config.Resume) {
      CheckpointContents Saved;
      std::string ReadError;
      if (!readCheckpoint(Config.CheckpointPath, Saved, ReadError)) {
        failAll(Specs, Sink, "cannot resume: " + ReadError);
        return;
      }
      if (Saved.Specs.size() != Specs.size() ||
          matrixFingerprint(Specs) != Saved.Fingerprint) {
        failAll(Specs, Sink,
                "checkpoint journal was written for a different matrix");
        return;
      }
      // Deliver the journaled cells exactly as a live worker would
      // have: the bytes came through the same wire codec, so the
      // post-resume aggregate cannot differ from an uninterrupted run.
      Already.assign(Specs.size(), false);
      for (std::size_t Index = 0; Index < Specs.size(); ++Index) {
        if (!Saved.Resolved[Index])
          continue;
        Already[Index] = true;
        Sink.deliver(Index, std::move(Saved.Results[Index]));
        if (Config.Events)
          Config.Events->onCellResumed(Index);
      }
      std::string OpenError;
      if (!Journal.openAppend(Config.CheckpointPath, OpenError)) {
        failAll(Specs, Sink, OpenError, &Already);
        return;
      }
      if (Saved.CompletedCells == Specs.size()) {
        Journal.close();
        return; // nothing left to serve
      }
    } else {
      std::string CreateError;
      if (!Journal.create(Config.CheckpointPath, Specs, CreateError)) {
        failAll(Specs, Sink, CreateError);
        return;
      }
    }
  }

  // Forked before serve() starts any service thread, so each child is a
  // clean single-threaded process running the worker loop.
  WorkerOptions ChildOpts;
  ChildOpts.IoTimeoutMs = Config.JobTimeoutMs;
  ChildOpts.Token = Config.Token;
  ChildOpts.HeartbeatIntervalMs = Config.HeartbeatIntervalMs;
  std::vector<pid_t> Children;
  for (unsigned I = 0; I < Config.ForkedWorkers; ++I) {
    const pid_t Child = ::fork();
    if (Child == 0) {
      const WorkerExit Exit = runWorker(Coord.boundAddress(), ChildOpts);
      ::_exit(Exit == WorkerExit::CleanShutdown ? 0 : 1);
    }
    if (Child > 0)
      Children.push_back(Child);
    // fork() failure: serve() still runs — external workers may
    // connect, and the idle deadline bounds the no-worker case.
  }

  Coord.serve(Specs, Sink, Already.empty() ? nullptr : &Already);
  Journal.close();

  for (const pid_t Child : Children) {
    int WaitStatus = 0;
    while (::waitpid(Child, &WaitStatus, 0) < 0 && errno == EINTR) {
    }
  }
}

std::unique_ptr<Executor> hds::engine::makeFleet(const FleetConfig &Config,
                                                 std::string *BoundAddress,
                                                 std::string *Error) {
  auto Exec = std::make_unique<FleetExecutor>(Config);
  if (!Exec->valid()) {
    if (Error)
      *Error = Exec->error();
    return nullptr;
  }
  if (BoundAddress)
    *BoundAddress = Exec->boundAddress();
  return Exec;
}
