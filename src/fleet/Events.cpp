//===- fleet/Events.cpp - Typed fleet lifecycle observer ------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Events.h"

using namespace hds;
using namespace hds::fleet;

FleetEvents::~FleetEvents() = default;

FleetStats FleetStatsCollector::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void FleetStatsCollector::onWorkerRegistered(const WorkerRecord &Record) {
  (void)Record;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.WorkersRegistered;
}

void FleetStatsCollector::onAuthFailed(const std::string &Reason) {
  (void)Reason;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.AuthFailures;
}

void FleetStatsCollector::onHeartbeat(uint64_t WorkerId) {
  (void)WorkerId;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Heartbeats;
}

void FleetStatsCollector::onHeartbeatMissed(uint64_t WorkerId) {
  (void)WorkerId;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.HeartbeatsMissed;
}

void FleetStatsCollector::onJobRequeued(std::size_t Index,
                                        const std::string &Reason) {
  (void)Index;
  (void)Reason;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.JobsRequeued;
}

void FleetStatsCollector::onCheckpointed(std::size_t Index) {
  (void)Index;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.CellsCheckpointed;
}

void FleetStatsCollector::onCellResumed(std::size_t Index) {
  (void)Index;
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.CellsResumed;
}
