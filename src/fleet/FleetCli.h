//===- fleet/FleetCli.h - CLI options -> fleet configs ---------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the shared cli::FleetOptions vocabulary (cli/Options.h) to
/// the engine/fleet config types.  Lives here rather than in cli/ so
/// the cli library keeps no dependency on the engine or fleet layers —
/// tools that parse fleet flags include this header and link hds_fleet.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_FLEETCLI_H
#define HDS_FLEET_FLEETCLI_H

#include "cli/Options.h"
#include "engine/ExecutorFactory.h"
#include "fleet/Worker.h"

namespace hds {
namespace fleet {

/// Serve-side mapping: everything makeFleet() reads from the flags.
/// Jobs/CancelRequested/ForkedWorkers/Resume/Events stay at their
/// defaults for the caller to fill.
inline engine::FleetConfig fleetConfigFromCli(const cli::FleetOptions &Cli) {
  engine::FleetConfig Config;
  if (!Cli.ServeAddr.empty())
    Config.ListenAddr = Cli.ServeAddr;
  Config.ForkedWorkers = Cli.Workers;
  Config.JobTimeoutMs = Cli.JobTimeoutMs;
  Config.IdleTimeoutMs = Cli.IdleTimeoutMs;
  Config.Token = Cli.Token;
  Config.AllowNonLoopback = Cli.AllowRemote;
  Config.HeartbeatIntervalMs = Cli.HeartbeatIntervalMs;
  Config.HeartbeatMisses = Cli.HeartbeatMisses;
  Config.CheckpointPath = Cli.CheckpointPath;
  return Config;
}

/// Worker-side mapping for fleet::runWorker().
inline WorkerOptions workerOptionsFromCli(const cli::FleetOptions &Cli) {
  WorkerOptions Opts;
  Opts.IoTimeoutMs = Cli.JobTimeoutMs;
  Opts.Token = Cli.Token;
  Opts.HeartbeatIntervalMs = Cli.HeartbeatIntervalMs;
  Opts.Caps.Cores = Cli.Cores;
  Opts.Caps.MemoryBudgetMB = Cli.MemoryMB;
  return Opts;
}

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_FLEETCLI_H
