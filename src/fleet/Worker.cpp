//===- fleet/Worker.cpp - Fleet experiment worker loop --------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Worker.h"

#include "engine/ExperimentRunner.h"
#include "engine/Transport.h"
#include "engine/Wire.h"
#include "fleet/Auth.h"

#include <poll.h>
#include <unistd.h>

#include <mutex>
#include <thread>

using namespace hds;
using namespace hds::fleet;
using namespace hds::engine;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

WorkerExit ioFailure(IoStatus Status, const std::string &Detail,
                     std::string *Error) {
  if (Status == IoStatus::TimedOut) {
    setError(Error, "coordinator went quiet past the I/O deadline");
    return WorkerExit::TimedOut;
  }
  setError(Error, Detail.empty() ? "connection to coordinator lost"
                                 : Detail);
  return WorkerExit::ProtocolError;
}

/// Background heartbeat sender.  Paces itself with poll() on a self-pipe
/// (no clocks in src/, rule D1): the pipe gaining a byte — or closing —
/// is the stop signal, and the poll timeout is the beat interval.
/// Sends share the connection's send mutex with the main loop so frames
/// never interleave.
class Beater {
public:
  Beater(Connection &ConnIn, std::mutex &SendMutexIn, uint32_t IntervalIn)
      : Conn(ConnIn), SendMutex(SendMutexIn), IntervalMs(IntervalIn) {
    if (IntervalMs == 0)
      return;
    int Fds[2];
    if (::pipe(Fds) != 0)
      return; // no pipe, no beater — the worker still functions
    ReadFd = Fds[0];
    WriteFd = Fds[1];
    Thread = std::thread([this] { run(); });
  }

  ~Beater() { stop(); }

  void stop() {
    if (WriteFd != -1) {
      ::close(WriteFd);
      WriteFd = -1;
    }
    if (Thread.joinable())
      Thread.join();
    if (ReadFd != -1) {
      ::close(ReadFd);
      ReadFd = -1;
    }
  }

private:
  void run() {
    for (;;) {
      struct pollfd Pfd = {};
      Pfd.fd = ReadFd;
      Pfd.events = POLLIN;
      const int Ready = ::poll(&Pfd, 1, static_cast<int>(IntervalMs));
      if (Ready != 0)
        return; // stop signal (or pipe error): either way, done
      std::lock_guard<std::mutex> Lock(SendMutex);
      if (Conn.sendFrame(wire::FrameType::Heartbeat, {}) != IoStatus::Ok)
        return; // connection is gone; the main loop will notice too
    }
  }

  Connection &Conn;
  std::mutex &SendMutex;
  uint32_t IntervalMs;
  int ReadFd = -1;
  int WriteFd = -1;
  std::thread Thread;
};

} // namespace

WorkerExit hds::fleet::runWorker(const std::string &Addr,
                                 const WorkerOptions &Opts,
                                 std::string *Error) {
  std::string ConnectError;
  Connection Conn = connectTo(Addr, ConnectError);
  if (!Conn.valid()) {
    setError(Error, ConnectError);
    return WorkerExit::ConnectFailed;
  }
  Conn.setDeadlines(Opts.IoTimeoutMs, Opts.IoTimeoutMs);

  // Authenticated hello: Hello (capabilities) -> Challenge (nonce) ->
  // AuthProof (keyed digest).  The token never crosses the wire; a
  // coordinator that dislikes the proof just drops us.
  wire::HelloInfo Caps;
  Caps.Cores = Opts.Caps.Cores;
  Caps.MemoryBudgetMB = Opts.Caps.MemoryBudgetMB;
  if (Conn.sendFrame(wire::FrameType::Hello, wire::encodeHello(Caps)) !=
      IoStatus::Ok) {
    setError(Error, "handshake send failed");
    return WorkerExit::ProtocolError;
  }
  wire::Frame Frame;
  std::string DecodeError;
  IoStatus Status = Conn.recvFrame(Frame, DecodeError);
  if (Status != IoStatus::Ok) {
    if (Status == IoStatus::Closed) {
      setError(Error, "coordinator closed during handshake "
                      "(authentication rejected?)");
      return WorkerExit::ProtocolError;
    }
    return ioFailure(Status, DecodeError, Error);
  }
  AuthNonce Nonce;
  if (Frame.Type != wire::FrameType::Challenge ||
      !wire::decodeChallenge(Frame.Payload, Nonce.Hi, Nonce.Lo,
                             DecodeError)) {
    setError(Error, "expected a Challenge frame after Hello");
    return WorkerExit::ProtocolError;
  }
  std::mutex SendMutex;
  {
    const uint64_t Proof =
        proofDigest(Opts.Token, Nonce, wire::ProtocolVersion);
    std::lock_guard<std::mutex> Lock(SendMutex);
    if (Conn.sendFrame(wire::FrameType::AuthProof,
                       wire::encodeAuthProof(Proof)) != IoStatus::Ok) {
      setError(Error, "handshake send failed");
      return WorkerExit::ProtocolError;
    }
  }

  // Heartbeats start only after the hello: the coordinator ignores
  // frames from unauthenticated connections by dropping them.
  Beater Beats(Conn, SendMutex, Opts.HeartbeatIntervalMs);

  uint64_t JobsRun = 0;
  for (;;) {
    bool RequestFailed;
    {
      std::lock_guard<std::mutex> Lock(SendMutex);
      RequestFailed =
          Conn.sendFrame(wire::FrameType::JobRequest, {}) != IoStatus::Ok;
    }
    if (RequestFailed) {
      // A winding-down coordinator half-closes its receive side, which
      // unix sockets surface to us as a send failure (EPIPE) — unlike
      // TCP, where the peer's SHUT_RD is invisible.  Its Shutdown
      // farewell may still be in flight; prefer it over the error.
      wire::Frame Bye;
      std::string ByeError;
      const IoStatus ByeStatus = Conn.recvFrame(Bye, ByeError);
      if (ByeStatus == IoStatus::Ok &&
          Bye.Type == wire::FrameType::Shutdown)
        return WorkerExit::CleanShutdown;
      if (ByeStatus == IoStatus::Closed && JobsRun == 0) {
        // No farewell, and the hang-up beat our very first request:
        // same likeliest cause as the recv-side close below.
        setError(Error, "coordinator closed after handshake "
                        "(authentication rejected?)");
        return WorkerExit::ProtocolError;
      }
      setError(Error, "job request send failed");
      return WorkerExit::ProtocolError;
    }

    Status = Conn.recvFrame(Frame, DecodeError);
    if (Status != IoStatus::Ok) {
      if (Status == IoStatus::Closed && JobsRun == 0) {
        // First post-handshake exchange and the peer hung up: the
        // likeliest cause is a rejected hello (bad token or skew).
        setError(Error, "coordinator closed after handshake "
                        "(authentication rejected?)");
        return WorkerExit::ProtocolError;
      }
      return ioFailure(Status, DecodeError, Error);
    }

    if (Frame.Type == wire::FrameType::Shutdown)
      return WorkerExit::CleanShutdown;
    if (Frame.Type != wire::FrameType::Assign) {
      setError(Error, "expected Assign or Shutdown frame");
      return WorkerExit::ProtocolError;
    }

    uint64_t Index = 0;
    ExperimentSpec Spec;
    if (!wire::decodeAssign(Frame.Payload, Index, Spec, DecodeError)) {
      setError(Error, "undecodable assignment: " + DecodeError);
      return WorkerExit::ProtocolError;
    }

    // The same private-Runtime execution an in-process job uses; the
    // result is a pure function of the spec, so where it ran is
    // invisible in the bytes.
    RunResult Result = runExperiment(Spec);
    ++JobsRun;

    if (Opts.DropAfterJobs != 0 && JobsRun >= Opts.DropAfterJobs) {
      // Fault injection: vanish exactly where a mid-job kill would —
      // the job ran but its result never reaches the coordinator.  The
      // close happens under the send mutex so the beater's next send
      // sees the dead fd instead of racing the close.
      {
        std::lock_guard<std::mutex> Lock(SendMutex);
        Conn.close();
      }
      Beats.stop();
      setError(Error, "fault injection: dropped connection after " +
                          std::to_string(JobsRun) + " job(s)");
      return WorkerExit::Dropped;
    }

    bool ResultFailed;
    {
      std::lock_guard<std::mutex> Lock(SendMutex);
      ResultFailed =
          Conn.sendFrame(wire::FrameType::Result,
                         wire::encodeResult(Index, Result)) != IoStatus::Ok;
    }
    if (ResultFailed) {
      setError(Error, "result send failed");
      return WorkerExit::ProtocolError;
    }
  }
}
