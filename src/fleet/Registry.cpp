//===- fleet/Registry.cpp - Fleet worker registry -------------------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Registry.h"

using namespace hds;
using namespace hds::fleet;

uint64_t WorkerRegistry::add(const WorkerCapabilities &Caps) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const uint64_t Id = NextId++;
  WorkerRecord Record;
  Record.Id = Id;
  Record.Caps = Caps;
  Record.Connected = true;
  Workers.emplace(Id, std::move(Record));
  return Id;
}

void WorkerRegistry::recordHeartbeat(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Heartbeats;
  const auto It = Workers.find(Id);
  if (It != Workers.end())
    ++It->second.Heartbeats;
}

void WorkerRegistry::recordJob(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Workers.find(Id);
  if (It != Workers.end())
    ++It->second.JobsCompleted;
}

void WorkerRegistry::markDeparted(uint64_t Id, const std::string &Reason) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Workers.find(Id);
  if (It == Workers.end())
    return;
  It->second.Connected = false;
  It->second.DepartReason = Reason;
}

void WorkerRegistry::recordAuthFailure() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++AuthFailures;
}

std::vector<WorkerRecord> WorkerRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<WorkerRecord> Rows;
  Rows.reserve(Workers.size());
  for (const auto &[Id, Record] : Workers) {
    (void)Id;
    Rows.push_back(Record);
  }
  return Rows;
}

uint64_t WorkerRegistry::connectedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Count = 0;
  for (const auto &[Id, Record] : Workers) {
    (void)Id;
    if (Record.Connected)
      ++Count;
  }
  return Count;
}

uint64_t WorkerRegistry::registeredCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return static_cast<uint64_t>(Workers.size());
}

uint64_t WorkerRegistry::authFailureCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return AuthFailures;
}

uint64_t WorkerRegistry::heartbeatCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Heartbeats;
}
