//===- fleet/FleetExecutor.h - Fleet-backed Executor -----------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Executor implementation behind engine::makeFleet(): a
/// Coordinator, its checkpoint journal, and optionally a clutch of
/// forked local worker processes, wrapped in the engine's transport-
/// agnostic execution interface.  Construction binds the listener (and
/// validates the config); runAll() restores any checkpoint, forks
/// workers, serves the matrix, and reaps the children.
///
/// The class itself is exposed (rather than hidden in the .cpp) for the
/// sake of tests that need the registry roster or the bound address
/// mid-run; production callers should stick to makeFleet().
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_FLEETEXECUTOR_H
#define HDS_FLEET_FLEETEXECUTOR_H

#include "engine/Executor.h"
#include "engine/ExecutorFactory.h"
#include "fleet/Checkpoint.h"
#include "fleet/Coordinator.h"

#include <span>
#include <string>
#include <vector>

namespace hds {
namespace fleet {

class FleetExecutor final : public engine::Executor {
public:
  explicit FleetExecutor(const engine::FleetConfig &Config);

  /// False when the listener failed to bind or the config was refused;
  /// error() says why.  runAll() on an invalid executor resolves every
  /// job as an error rather than hanging.
  bool valid() const { return Valid; }
  const std::string &error() const { return Err; }
  /// The address workers should connect to (real port for ":0").
  const std::string &boundAddress() const { return Coord.boundAddress(); }
  /// Roster of workers that passed the authenticated hello.
  const WorkerRegistry &registry() const { return Coord.registry(); }

  void runAll(std::span<const engine::ExperimentSpec> Specs,
              engine::ResultSink &Sink) override;

private:
  void failAll(std::span<const engine::ExperimentSpec> Specs,
               engine::ResultSink &Sink, const std::string &Reason,
               const std::vector<bool> *Skip = nullptr);

  engine::FleetConfig Config;
  /// Owned journal handed to the coordinator by pointer; opened in
  /// runAll() once the matrix (and any prior journal) is known.
  CheckpointWriter Journal;
  Coordinator Coord;
  bool Valid = false;
  std::string Err;
};

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_FLEETEXECUTOR_H
