//===- fleet/Checkpoint.h - Append-only matrix checkpoint ------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator's crash journal (docs/fleet.md, "Checkpoint journal
/// format").  A journal is a flat sequence of ordinary wire frames
/// (engine/Wire.h): one CheckpointHeader frame — matrix fingerprint plus
/// the full spec list — followed by one Result frame per completed cell,
/// each flushed before the cell's result is delivered.  Because records
/// reuse the Result wire encoding byte for byte, a resumed cell carries
/// exactly the bytes a live worker would have sent, which is what keeps
/// the post-resume aggregate JSON byte-identical to an uninterrupted
/// run.
///
/// Crash tolerance: a coordinator killed mid-append leaves a torn final
/// frame; the reader drops it (that cell just re-runs).  Anything else —
/// bad magic, bad CRC, version skew, an index outside the matrix, a
/// duplicate record — rejects the whole journal: a checkpoint you cannot
/// trust end to end is not a checkpoint.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_CHECKPOINT_H
#define HDS_FLEET_CHECKPOINT_H

#include "engine/ExperimentRunner.h"
#include "engine/ExperimentSpec.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace hds {
namespace fleet {

/// Identity of a spec list: CRC32 over the wire encoding of every spec,
/// folded with the cell count.  resume() refuses a journal whose
/// fingerprint does not match the matrix it is asked to finish.
uint64_t matrixFingerprint(std::span<const engine::ExperimentSpec> Specs);

/// Appends completed cells to the journal; thread-safe (service threads
/// resolve cells concurrently).
class CheckpointWriter {
public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter &) = delete;
  CheckpointWriter &operator=(const CheckpointWriter &) = delete;

  /// Starts a fresh journal: truncates \p Path and writes the header
  /// frame for \p Specs.
  bool create(const std::string &Path,
              std::span<const engine::ExperimentSpec> Specs,
              std::string &Error);

  /// Reopens an existing journal for appending (resume); the header is
  /// already on disk.
  bool openAppend(const std::string &Path, std::string &Error);

  /// Journals one completed cell.  Only Status::Ok results are recorded
  /// — errored cells retry on resume.  Returns true when a record was
  /// written and flushed.
  bool append(std::size_t Index, const engine::RunResult &Result);

  bool isOpen() const;
  std::size_t records() const;
  void close();

private:
  mutable std::mutex Mutex;
  std::FILE *File = nullptr;  // hds-guarded-by(Mutex)
  std::size_t Records = 0;    // hds-guarded-by(Mutex)
};

/// Everything a journal holds, decoded.
struct CheckpointContents {
  std::vector<engine::ExperimentSpec> Specs;
  /// One slot per spec; Resolved[i] says whether Results[i] was
  /// journaled (unresolved slots are default RunResults).
  std::vector<engine::RunResult> Results;
  std::vector<bool> Resolved;
  std::size_t CompletedCells = 0;
  uint64_t Fingerprint = 0;
  /// The file ended in a partial frame (coordinator killed mid-append);
  /// the torn record was dropped.
  bool TornTail = false;
};

/// Decodes the journal at \p Path.  Returns false (with \p Error) on a
/// missing/empty file or any corruption other than a torn tail.
bool readCheckpoint(const std::string &Path, CheckpointContents &Out,
                    std::string &Error);

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_CHECKPOINT_H
