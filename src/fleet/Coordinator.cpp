//===- fleet/Coordinator.cpp - Fleet experiment coordinator ---------------===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//

#include "fleet/Coordinator.h"

#include "engine/Wire.h"
#include "fleet/Auth.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

using namespace hds;
using namespace hds::fleet;
using namespace hds::engine;

namespace {

/// Accept-poll slice: short enough that the accept loop notices matrix
/// completion and drain requests promptly, long enough to stay off the
/// scheduler's back.
constexpr uint32_t AcceptSliceMs = 100;

bool isLoopback(const Address &Addr) {
  return Addr.IsUnix || Addr.Host.rfind("127.", 0) == 0;
}

} // namespace

/// Everything the accept loop and the per-worker service threads share,
/// guarded by one mutex.  Job identity is the spec's matrix index; the
/// sink's index-addressing is what keeps the merged aggregate
/// byte-identical to an in-process run no matter which worker ran what.
struct Coordinator::ServeState {
  std::mutex Mutex;
  /// Signalled when Pending gains a job or Done/Draining flips.
  std::condition_variable WorkAvailable;

  std::deque<std::size_t> Pending; // hds-guarded-by(Mutex) awaiting a worker
  std::vector<unsigned> Attempts;  // hds-guarded-by(Mutex) dispatches per index
  std::vector<bool> Resolved;      // hds-guarded-by(Mutex) slot filled once
  std::size_t Unresolved = 0;      // hds-guarded-by(Mutex)
  unsigned ActiveWorkers = 0;      // hds-guarded-by(Mutex)
  bool Done = false;               // hds-guarded-by(Mutex)
  /// Drain requested: stop handing out work; in-flight jobs finish, the
  /// untouched remainder stays unresolved for the sink to report
  /// Cancelled.
  bool Draining = false; // hds-guarded-by(Mutex)
  /// Accept loop gave up (listener error); once the last worker leaves,
  /// nobody can resolve pending jobs, so the leaving worker fails them.
  bool ListenerBroken = false; // hds-guarded-by(Mutex)
  /// Monotonic registry key for Open (never a pointer value: iteration
  /// order must not depend on allocation addresses, rule D3's spirit).
  std::size_t NextConnectionId = 0; // hds-guarded-by(Mutex)

  /// Open connections by service-thread id, so completion can shake
  /// blocked recv() calls loose via shutdown instead of waiting out
  /// their deadlines.
  std::map<std::size_t, Connection *> Open; // hds-guarded-by(Mutex)

  std::span<const ExperimentSpec> Specs;
  ResultSink *Sink = nullptr;
  FleetEvents *Events = nullptr;
  CheckpointWriter *Journal = nullptr;

  /// All field initialization lives here, before any service or accept
  /// thread exists — single-threaded by construction, so the constructor
  /// (exempt from T1) is the only place that may touch guarded fields
  /// without the mutex.  Cells flagged in \p AlreadyResolved were
  /// restored from a checkpoint and delivered by the caller: they are
  /// marked resolved here so they never enter the queue.
  ServeState(std::span<const ExperimentSpec> SpecsIn, ResultSink &SinkIn,
             const std::vector<bool> *AlreadyResolved, FleetEvents *EventsIn,
             CheckpointWriter *JournalIn)
      : Specs(SpecsIn), Sink(&SinkIn), Events(EventsIn), Journal(JournalIn) {
    Attempts.assign(Specs.size(), 0);
    Resolved.assign(Specs.size(), false);
    Unresolved = Specs.size();
    for (std::size_t I = 0; I < Specs.size(); ++I) {
      if (AlreadyResolved && I < AlreadyResolved->size() &&
          (*AlreadyResolved)[I]) {
        Resolved[I] = true;
        --Unresolved;
        continue;
      }
      Pending.push_back(I);
    }
  }

  /// Resolves \p Index exactly once: journaled first (so a crash after
  /// the flush still has the cell), then delivered.
  // hds-requires(Mutex)
  void resolveLocked(std::size_t Index, RunResult Result) {
    if (Resolved[Index])
      return;
    Resolved[Index] = true;
    if (Journal && Journal->append(Index, Result) && Events)
      Events->onCheckpointed(Index);
    Sink->deliver(Index, std::move(Result));
    if (--Unresolved == 0)
      finishLocked();
  }

  /// Flips Done and wakes every blocked thread.  Only
  /// the receive side of each connection is shut down: that is enough
  /// to shake a service thread out of a blocked recvFrame, while the
  /// send side stays open so the thread can still deliver the farewell
  /// Shutdown frame its worker needs to exit cleanly.
  // hds-requires(Mutex)
  void finishLocked() {
    Done = true;
    WorkAvailable.notify_all();
    for (auto &[Id, Conn] : Open) {
      (void)Id;
      Conn->shutdownRead();
    }
  }

  /// With a broken listener and no workers left, no one can ever resolve
  /// the pending jobs — fail them now.
  // hds-requires(Mutex)
  void failPendingLocked(const std::string &Reason,
                         std::span<const ExperimentSpec> AllSpecs) {
    while (!Pending.empty()) {
      const std::size_t Index = Pending.front();
      Pending.pop_front();
      RunResult Failed;
      Failed.Spec = AllSpecs[Index];
      Failed.State = RunResult::Status::Error;
      Failed.Error = Reason;
      resolveLocked(Index, std::move(Failed));
    }
    if (!Done)
      finishLocked();
  }

  /// Returns \p Index to the queue or, once the retry budget is spent,
  /// resolves it as an error.
  // hds-requires(Mutex)
  void requeueLocked(std::size_t Index, const std::string &Reason,
                     unsigned RetryBudget) {
    if (Resolved[Index])
      return;
    if (Attempts[Index] > RetryBudget) {
      RunResult Failed;
      Failed.Spec = Specs[Index];
      Failed.State = RunResult::Status::Error;
      Failed.Error = "job failed after " + std::to_string(Attempts[Index]) +
                     " dispatch(es): " + Reason;
      resolveLocked(Index, std::move(Failed));
      return;
    }
    // Front of the queue: a re-queued job runs before fresh work so a
    // straggler cell cannot starve behind the whole remaining matrix.
    Pending.push_front(Index);
    if (Events)
      Events->onJobRequeued(Index, Reason);
    WorkAvailable.notify_one();
  }
};

Coordinator::Coordinator(const CoordinatorOptions &OptsIn) : Opts(OptsIn) {}

bool Coordinator::listen() {
  Address Addr;
  if (!parseAddress(Opts.ListenAddr, Addr, ListenError))
    return false;
  if (!isLoopback(Addr)) {
    if (!Opts.AllowNonLoopback) {
      ListenError = "refusing non-loopback listener '" + Opts.ListenAddr +
                    "' (opt in with --allow-remote and a shared --token; "
                    "docs/fleet.md, trust model)";
      return false;
    }
    if (Opts.Token.empty()) {
      ListenError = "non-loopback listener '" + Opts.ListenAddr +
                    "' requires a shared --token (docs/fleet.md, trust "
                    "model)";
      return false;
    }
  }
  return Sockets.listen(Opts.ListenAddr, ListenError);
}

void Coordinator::serve(std::span<const ExperimentSpec> Specs,
                        ResultSink &Sink,
                        const std::vector<bool> *AlreadyResolved) {
  ServeState State(Specs, Sink, AlreadyResolved, Opts.Events, Opts.Journal);
  if (Specs.empty() || State.Unresolved == 0)
    return;

  if (!Sockets.valid()) {
    std::lock_guard<std::mutex> Lock(State.Mutex);
    for (std::size_t I = 0; I < Specs.size(); ++I) {
      if (State.Resolved[I])
        continue;
      RunResult Failed;
      Failed.Spec = Specs[I];
      Failed.State = RunResult::Status::Error;
      Failed.Error = "coordinator has no listener: " +
                     (ListenError.empty() ? std::string("listen() not called")
                                          : ListenError);
      State.resolveLocked(I, std::move(Failed));
    }
    return;
  }

  std::vector<std::jthread> Handlers;
  uint32_t IdleMs = 0;
  for (;;) {
    Connection Conn;
    const Listener::AcceptStatus Status =
        Sockets.accept(Conn, AcceptSliceMs);
    {
      std::lock_guard<std::mutex> Lock(State.Mutex);
      if (State.Done)
        break;
      if (!State.Draining && Opts.DrainRequested &&
          Opts.DrainRequested->load(std::memory_order_relaxed)) {
        State.Draining = true;
        State.WorkAvailable.notify_all();
      }
      if (State.Draining && State.ActiveWorkers == 0) {
        // Every in-flight cell has resolved (and journaled); the rest
        // stay unresolved so the sink reports them Cancelled.
        State.finishLocked();
        break;
      }
      if (Status == Listener::AcceptStatus::TimedOut) {
        // Idle accounting: only time with zero workers counts — with a
        // worker connected, progress (or its per-job deadline) is the
        // responsibility of that worker's service thread.
        if (State.ActiveWorkers == 0 && !State.Draining) {
          IdleMs += AcceptSliceMs;
          if (IdleMs >= Opts.IdleTimeoutMs) {
            State.failPendingLocked(
                "no worker connected within idle deadline", Specs);
            break;
          }
        } else {
          IdleMs = 0;
        }
        continue;
      }
      if (Status == Listener::AcceptStatus::Error) {
        // Listener broke (fd trouble, resource exhaustion): stop
        // accepting.  Connected workers still drain the queue; if none
        // remain (now or later, see Deregister), the pending jobs are
        // failed instead of left to hang.
        State.ListenerBroken = true;
        if (State.ActiveWorkers == 0)
          State.failPendingLocked("coordinator listener failed", Specs);
        break;
      }
      IdleMs = 0;
      ++State.ActiveWorkers;
    }
    Handlers.emplace_back(
        [this, &State](Connection C) { handleWorker(std::move(C), State); },
        std::move(Conn));
  }

  // jthread destructors join every service thread; finishLocked() has
  // already shaken loose any blocked recv via shutdown.
  Handlers.clear();
  Sockets.close();
}

void Coordinator::handleWorker(Connection Conn, ServeState &State) {
  // Receive in heartbeat-sized slices so liveness accounting can run
  // between frames without a wall clock (rule D1): every TimedOut slice
  // advances the quiet and held counters by SliceMs.  With heartbeats
  // disabled the slice is the whole job deadline, recovering the legacy
  // one-timeout-per-job behavior.
  const bool Beats = Opts.HeartbeatIntervalMs != 0;
  const uint32_t SliceMs =
      std::max<uint32_t>(1, Beats ? std::min(Opts.HeartbeatIntervalMs,
                                             Opts.JobTimeoutMs)
                                  : Opts.JobTimeoutMs);
  // 64-bit on purpose: interval * misses can overflow uint32_t.
  const uint64_t HbWindowMs = static_cast<uint64_t>(Opts.HeartbeatIntervalMs) *
                              std::max(1u, Opts.HeartbeatMisses);
  Conn.setDeadlines(SliceMs, Opts.JobTimeoutMs);

  std::size_t Id;
  {
    std::lock_guard<std::mutex> Lock(State.Mutex);
    Id = State.NextConnectionId++;
    State.Open.emplace(Id, &Conn);
  }

  // In-flight assignment for this connection, if any.
  bool HasAssigned = false;
  std::size_t Assigned = 0;
  std::string DropReason;
  uint64_t WorkerId = 0; // 0 = never passed the hello

  auto Deregister = [&] {
    if (WorkerId != 0)
      Registry.markDeparted(WorkerId, DropReason.empty() ? "clean shutdown"
                                                         : DropReason);
    std::lock_guard<std::mutex> Lock(State.Mutex);
    State.Open.erase(Id);
    --State.ActiveWorkers;
    if (HasAssigned)
      State.requeueLocked(Assigned, DropReason, Opts.RetryBudget);
    // Last worker out with a dead listener: nobody can ever pick the
    // pending jobs up again.
    if (State.ListenerBroken && State.ActiveWorkers == 0 && !State.Done)
      State.failPendingLocked("all workers gone and listener failed",
                              State.Specs);
  };

  // Bounded handshake receive: accumulates slices up to the job
  // deadline.  Returns false on timeout, transport failure, or matrix
  // completion racing the handshake.
  wire::Frame Frame;
  std::string Error;
  auto RecvHandshake = [&]() -> bool {
    uint64_t WaitedMs = 0;
    for (;;) {
      const IoStatus Status = Conn.recvFrame(Frame, Error);
      if (Status == IoStatus::Ok)
        return true;
      if (Status != IoStatus::TimedOut)
        return false;
      {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        if (State.Done)
          return false;
      }
      WaitedMs += SliceMs;
      if (WaitedMs >= Opts.JobTimeoutMs)
        return false;
    }
  };

  auto AuthReject = [&](const std::string &Reason) {
    DropReason = Reason;
    bool WindDown;
    {
      std::lock_guard<std::mutex> Lock(State.Mutex);
      WindDown = State.Done;
    }
    // A handshake cut short because the matrix finished is wind-down,
    // not an attack; only count failures the worker earned.
    if (!WindDown) {
      Registry.recordAuthFailure();
      if (Opts.Events)
        Opts.Events->onAuthFailed(Reason);
    }
    Deregister();
  };

  // Authenticated hello (docs/fleet.md, "Trust model").  The frame
  // decoder already enforces the protocol version byte, so a skewed
  // worker dies here, not mid-matrix; the challenge/response proves the
  // worker holds the shared token without the token crossing the wire,
  // and the fresh per-connection nonce makes a recorded proof useless
  // on the next connection.
  wire::HelloInfo Caps;
  if (!RecvHandshake() || Frame.Type != wire::FrameType::Hello ||
      !wire::decodeHello(Frame.Payload, Caps, Error)) {
    AuthReject(Error.empty() ? "handshake failed"
                             : "handshake failed: " + Error);
    return;
  }
  const AuthNonce Nonce = makeNonce(Id);
  if (Conn.sendFrame(wire::FrameType::Challenge,
                     wire::encodeChallenge(Nonce.Hi, Nonce.Lo)) !=
      IoStatus::Ok) {
    AuthReject("handshake failed: challenge send");
    return;
  }
  uint64_t Proof = 0;
  if (!RecvHandshake() || Frame.Type != wire::FrameType::AuthProof ||
      !wire::decodeAuthProof(Frame.Payload, Proof, Error)) {
    AuthReject("handshake failed: no proof");
    return;
  }
  if (Proof != proofDigest(Opts.Token, Nonce, wire::ProtocolVersion)) {
    AuthReject("authentication failed");
    return;
  }

  WorkerId = Registry.add(
      WorkerCapabilities{Caps.Cores, Caps.MemoryBudgetMB});
  if (Opts.Events) {
    WorkerRecord Record;
    Record.Id = WorkerId;
    Record.Caps = WorkerCapabilities{Caps.Cores, Caps.MemoryBudgetMB};
    Record.Connected = true;
    Opts.Events->onWorkerRegistered(Record);
  }

  uint64_t QuietMs = 0; // since the last frame from this worker
  uint64_t HeldMs = 0;  // since the current assignment went out
  for (;;) {
    const IoStatus Status = Conn.recvFrame(Frame, Error);
    if (Status == IoStatus::TimedOut) {
      bool WindDown;
      {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        WindDown = State.Done;
      }
      if (WindDown) {
        Conn.sendFrame(wire::FrameType::Shutdown, {});
        Deregister();
        return;
      }
      QuietMs += SliceMs;
      if (HasAssigned) {
        HeldMs += SliceMs;
        if (HeldMs >= Opts.JobTimeoutMs) {
          DropReason = "worker timed out";
          Deregister();
          return;
        }
      }
      if (Beats && QuietMs >= HbWindowMs) {
        DropReason = "worker heartbeats lost";
        if (Opts.Events)
          Opts.Events->onHeartbeatMissed(WorkerId);
        Deregister();
        return;
      }
      continue;
    }
    if (Status != IoStatus::Ok) {
      bool WindDown;
      {
        std::lock_guard<std::mutex> Lock(State.Mutex);
        WindDown = State.Done;
      }
      if (WindDown) {
        // The matrix resolved while this worker's next request was in
        // flight (finishLocked shut our receive side).  Not a fault:
        // send the farewell so the worker exits cleanly.
        Conn.sendFrame(wire::FrameType::Shutdown, {});
        Deregister();
        return;
      }
      DropReason = Status == IoStatus::Closed ? "worker disconnected"
                   : Status == IoStatus::Malformed
                       ? "malformed frame: " + Error
                       : "transport error";
      Deregister();
      return;
    }
    QuietMs = 0;

    if (Frame.Type == wire::FrameType::Heartbeat) {
      Registry.recordHeartbeat(WorkerId);
      if (Opts.Events)
        Opts.Events->onHeartbeat(WorkerId);
      // The worker is alive but the job is still out: heartbeats arrive
      // about one interval apart, so charge the held clock one slice —
      // a heartbeating worker that never returns its result still hits
      // the per-job deadline.
      if (HasAssigned) {
        HeldMs += SliceMs;
        if (HeldMs >= Opts.JobTimeoutMs) {
          DropReason = "worker timed out";
          Deregister();
          return;
        }
      }
      continue;
    }

    if (Frame.Type == wire::FrameType::JobRequest) {
      if (HasAssigned) {
        // A worker may only pull when free; honoring this request would
        // orphan the held job (nobody would ever re-queue it).
        DropReason = "job request while holding an assignment";
        Deregister();
        return;
      }
      std::size_t Index;
      {
        std::unique_lock<std::mutex> Lock(State.Mutex);
        State.WorkAvailable.wait(Lock, [&State] {
          return State.Done || State.Draining || !State.Pending.empty();
        });
        if (State.Done || State.Draining) {
          Lock.unlock();
          Conn.sendFrame(wire::FrameType::Shutdown, {});
          HasAssigned = false;
          Deregister();
          return;
        }
        Index = State.Pending.front();
        State.Pending.pop_front();
        ++State.Attempts[Index];
      }
      if (Conn.sendFrame(wire::FrameType::Assign,
                         wire::encodeAssign(Index, State.Specs[Index])) !=
          IoStatus::Ok) {
        HasAssigned = true;
        Assigned = Index;
        DropReason = "assignment send failed";
        Deregister();
        return;
      }
      HasAssigned = true;
      Assigned = Index;
      HeldMs = 0;
      continue;
    }

    if (Frame.Type == wire::FrameType::Result) {
      uint64_t Index = 0;
      RunResult Result;
      if (!wire::decodeResult(Frame.Payload, Index, Result, Error) ||
          !HasAssigned || Index != Assigned) {
        DropReason = Error.empty()
                         ? "result for a job this worker does not hold"
                         : "undecodable result: " + Error;
        Deregister();
        return;
      }
      HasAssigned = false;
      Registry.recordJob(WorkerId);
      std::lock_guard<std::mutex> Lock(State.Mutex);
      State.resolveLocked(Assigned, std::move(Result));
      continue;
    }

    DropReason = "unexpected frame type";
    Deregister();
    return;
  }
}
