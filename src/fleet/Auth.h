//===- fleet/Auth.h - Authenticated hello for the fleet service -*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-token challenge/response behind the fleet handshake
/// (docs/fleet.md, "Trust model").  The coordinator sends a fresh
/// 16-byte nonce in a Challenge frame; the worker answers with a keyed
/// digest over (token, nonce, protocol version) in an AuthProof frame.
/// The digest is a SipHash-2-4 style keyed hash with the key derived
/// from the shared token, so a passive observer of one handshake cannot
/// replay it (the nonce is fresh per connection) and cannot forge proofs
/// for other nonces without the token.
///
/// This is an HMAC-style integrity gate for experiment fleets on
/// trusted networks, not a reviewed cryptographic protocol: the payload
/// stream after the handshake is CRC'd but neither encrypted nor
/// authenticated.  See docs/fleet.md for the full threat model and the
/// non-loopback gating rules built on top of this.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_AUTH_H
#define HDS_FLEET_AUTH_H

#include <cstdint>
#include <string>

namespace hds {
namespace fleet {

/// The 16-byte challenge nonce, as two little-endian words on the wire.
struct AuthNonce {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
};

/// A fresh per-connection nonce.  Reads /dev/urandom and folds \p Salt
/// (the coordinator's monotone connection id) into the result; when
/// urandom is unavailable the pid/salt fallback still makes nonces
/// distinct per connection, which is what replay rejection needs.
AuthNonce makeNonce(uint64_t Salt);

/// The proof a worker must return for \p Nonce: SipHash-2-4 of the
/// nonce and \p ProtocolVersion under a key derived from \p Token.
/// An empty token is legal (the loopback default) — the exchange then
/// proves liveness and version agreement but not identity.
uint64_t proofDigest(const std::string &Token, const AuthNonce &Nonce,
                     uint8_t ProtocolVersion);

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_AUTH_H
