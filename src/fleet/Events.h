//===- fleet/Events.h - Typed fleet lifecycle observer ---------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed observer the coordinator notifies about fleet lifecycle
/// events — worker registered, heartbeat seen or missed, job requeued,
/// cell checkpointed — replacing the ad-hoc callbacks the loopback
/// coordinator grew.  Events are notifications only: handlers run on
/// accept/service threads (sometimes under coordinator locks), so they
/// must be quick, thread-safe, and must never call back into the
/// coordinator.
///
/// FleetStatsCollector is the stock subscriber: it accumulates the
/// FleetStats counter block, whose fields are enumerated by
/// visitFleetStatsMetrics under the same append-only `hds::obs`
/// MetricDef contract as every other counter block in the tree (and are
/// therefore part of tests/golden/schema.lock).
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_EVENTS_H
#define HDS_FLEET_EVENTS_H

#include "fleet/Registry.h"
#include "obs/Metrics.h"

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace hds {
namespace fleet {

/// Counters a fleet run accumulates, reported by `hds_fleet` and
/// diffable like any other metric block.
struct FleetStats {
  uint64_t WorkersRegistered = 0;
  uint64_t AuthFailures = 0;
  uint64_t Heartbeats = 0;
  uint64_t HeartbeatsMissed = 0;
  uint64_t JobsRequeued = 0;
  uint64_t CellsCheckpointed = 0;
  uint64_t CellsResumed = 0;
};

/// Append-only metric enumeration for FleetStats (obs/Metrics.h).
template <typename StatsT, typename Fn>
void visitFleetStatsMetrics(StatsT &&Stats, Fn &&Visit) {
  using obs::MetricDef;
  Visit(MetricDef{"workers_registered", "count",
                  "workers that passed the authenticated hello"},
        Stats.WorkersRegistered);
  Visit(MetricDef{"auth_failures", "count",
                  "connections dropped at the hello (bad proof, skew, "
                  "or malformed handshake)"},
        Stats.AuthFailures);
  Visit(MetricDef{"heartbeats", "count", "Heartbeat frames received"},
        Stats.Heartbeats);
  Visit(MetricDef{"heartbeats_missed", "count",
                  "workers dropped after a silent heartbeat window"},
        Stats.HeartbeatsMissed);
  Visit(MetricDef{"jobs_requeued", "count",
                  "assignments returned to the queue after a worker "
                  "fault"},
        Stats.JobsRequeued);
  Visit(MetricDef{"cells_checkpointed", "count",
                  "completed cells appended to the checkpoint journal"},
        Stats.CellsCheckpointed);
  Visit(MetricDef{"cells_resumed", "count",
                  "cells restored from the journal instead of re-run"},
        Stats.CellsResumed);
}

/// Override what you care about; every default is a no-op.
class FleetEvents {
public:
  virtual ~FleetEvents();

  /// A worker passed the authenticated hello and joined the registry.
  virtual void onWorkerRegistered(const WorkerRecord &Record) {
    (void)Record;
  }
  /// A connection failed the hello (bad proof, version skew, garbage).
  virtual void onAuthFailed(const std::string &Reason) { (void)Reason; }
  /// A Heartbeat frame arrived from a registered worker.
  virtual void onHeartbeat(uint64_t WorkerId) { (void)WorkerId; }
  /// A registered worker went silent past the heartbeat window.
  virtual void onHeartbeatMissed(uint64_t WorkerId) { (void)WorkerId; }
  /// An in-flight assignment went back to the queue (or exhausted its
  /// retry budget — the coordinator decides, the event just reports).
  virtual void onJobRequeued(std::size_t Index, const std::string &Reason) {
    (void)Index;
    (void)Reason;
  }
  /// A completed cell was appended to the checkpoint journal.
  virtual void onCheckpointed(std::size_t Index) { (void)Index; }
  /// A cell was restored from the journal during resume.
  virtual void onCellResumed(std::size_t Index) { (void)Index; }
};

/// Stock subscriber: counts events into a FleetStats block.
class FleetStatsCollector final : public FleetEvents {
public:
  FleetStats snapshot() const;

  void onWorkerRegistered(const WorkerRecord &Record) override;
  void onAuthFailed(const std::string &Reason) override;
  void onHeartbeat(uint64_t WorkerId) override;
  void onHeartbeatMissed(uint64_t WorkerId) override;
  void onJobRequeued(std::size_t Index, const std::string &Reason) override;
  void onCheckpointed(std::size_t Index) override;
  void onCellResumed(std::size_t Index) override;

private:
  mutable std::mutex Mutex;
  FleetStats Stats; // hds-guarded-by(Mutex)
};

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_EVENTS_H
