//===- fleet/Registry.h - Fleet worker registry ----------------*- C++ -*-===//
//
// Part of the hds project (PLDI 2002 hot data stream prefetching repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator-side roster of workers that passed the authenticated
/// hello: who is connected, what capabilities they declared, how many
/// heartbeats and jobs each has delivered, and why the departed ones
/// left (docs/fleet.md, "Registry lifecycle").  The registry is pure
/// bookkeeping — assignment stays pull-style, so nothing here can
/// change which bytes the matrix aggregates to.
///
//===----------------------------------------------------------------------===//

#ifndef HDS_FLEET_REGISTRY_H
#define HDS_FLEET_REGISTRY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hds {
namespace fleet {

/// What a worker declares in its Hello frame.  Zero = not declared.
/// Capabilities are advisory (registry rows, `hds_fleet status`), never
/// a scheduling input.
struct WorkerCapabilities {
  uint64_t Cores = 0;
  uint64_t MemoryBudgetMB = 0;
};

/// One registered worker, live or departed.
struct WorkerRecord {
  uint64_t Id = 0; ///< monotone registration id (never reused)
  WorkerCapabilities Caps;
  uint64_t Heartbeats = 0;
  uint64_t JobsCompleted = 0;
  bool Connected = false;
  /// Why the worker left ("clean shutdown", "worker heartbeats lost",
  /// ...).  Empty while connected.
  std::string DepartReason;
};

/// Thread-safe roster shared by the accept loop and every service
/// thread.  Ids are monotone so iteration order is registration order,
/// never an address (rule D3's spirit).
class WorkerRegistry {
public:
  /// Admits a worker that passed the authenticated hello; returns its id.
  uint64_t add(const WorkerCapabilities &Caps);

  void recordHeartbeat(uint64_t Id);
  void recordJob(uint64_t Id);
  void markDeparted(uint64_t Id, const std::string &Reason);
  /// A connection that failed the handshake never gets a record, but the
  /// attempt is counted (FleetStats.auth_failures feeds off this).
  void recordAuthFailure();

  /// Rows in registration order.
  std::vector<WorkerRecord> snapshot() const;

  uint64_t connectedCount() const;
  uint64_t registeredCount() const;
  uint64_t authFailureCount() const;
  uint64_t heartbeatCount() const;

private:
  mutable std::mutex Mutex;
  std::map<uint64_t, WorkerRecord> Workers; // hds-guarded-by(Mutex)
  uint64_t NextId = 1;                      // hds-guarded-by(Mutex)
  uint64_t AuthFailures = 0;                // hds-guarded-by(Mutex)
  uint64_t Heartbeats = 0;                  // hds-guarded-by(Mutex)
};

} // namespace fleet
} // namespace hds

#endif // HDS_FLEET_REGISTRY_H
